// Synchronous client for the simulation service (svc/server.hpp).
//
// One Client = one TCP connection = one session. Requests are strictly
// paired (send, wait for the 0x8x response); asynchronous FRAME/DONE
// messages that arrive while waiting are queued and drained later with
// next_event(). This is the library bench/loadgen and the service tests
// build on; anything protocol-level (framing, f64 payloads) stays in
// svc/protocol.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "omx/svc/protocol.hpp"

namespace omx::svc {

struct ModelInfo {
  std::string model;    // handle to pass to submit()
  std::size_t n = 0;    // state-vector width
  std::string backend;  // "native" or the interpreter fallback
  bool cached = false;  // served from the daemon's model registry
  std::vector<double> y0;
};

struct SubmitRequest {
  std::string model;
  std::string method = "dopri5";
  double t0 = 0.0;
  double tend = 1.0;
  std::size_t scenarios = 1;
  /// Scenario initial states, scenario-major, scenarios*n doubles.
  /// Empty = every scenario starts from the model's y0.
  std::vector<double> y0s;
  bool stream = true;
  std::size_t record_every = 1;
  double dt = 1e-3;
  double rtol = 1e-6;
  double atol = 1e-9;
  std::size_t workers = 0;    // 0 = server default
  std::size_t max_batch = 0;  // 0 = server default
  /// Ask the daemon's cost model to pick workers/max_batch once it has
  /// calibrated on earlier jobs (the explicit settings above still run —
  /// and train the model — until then).
  bool autotune = false;
};

struct SubmitResult {
  bool accepted = false;
  std::uint64_t job = 0;
  int retry_after_ms = 0;  // backpressure hint when !accepted
};

/// One asynchronous message: a trajectory chunk or a job completion.
struct Event {
  enum class Kind { kFrame, kDone };
  Kind kind = Kind::kFrame;
  std::uint64_t job = 0;
  // kFrame:
  std::uint32_t scenario = 0;
  std::size_t rows = 0;
  std::size_t n = 0;
  bool final_chunk = false;
  std::vector<double> times;   // [rows]
  std::vector<double> states;  // [rows * n], row-major
  // kDone:
  bool cancelled = false;
  std::uint64_t frames = 0;
  std::vector<std::uint64_t> row_counts;  // per scenario
  std::string error;                      // empty = success
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  ModelInfo compile_builtin(const std::string& name, int rollers = 0);
  ModelInfo compile_source(const std::string& source);
  SubmitResult submit(const SubmitRequest& req);
  /// True = the job was still running and is now flagged.
  bool cancel(std::uint64_t job);
  /// Raw JSON server statistics snapshot.
  std::string stats();
  void ping();
  /// Orderly goodbye; the server closes after acknowledging.
  void bye();

  /// Next FRAME/DONE event. Blocks up to timeout_ms (-1 = forever);
  /// false = timeout with no event. Throws on a broken connection.
  bool next_event(Event& ev, int timeout_ms = -1);

 private:
  Message request(const Message& m);
  Message read_message(int timeout_ms);  // throws on timeout/disconnect
  static Event to_event(const Message& m);

  int fd_ = -1;
  FrameReader reader_;
  std::vector<Event> pending_;  // async events queued during request()
};

}  // namespace omx::svc
