// Partitioned (multirate) solving: agreement with the monolithic solve,
// independent per-subsystem step sizes, pipeline-order correctness.
#include <gtest/gtest.h>

#include <cmath>

#include "omx/analysis/subsystem_solver.hpp"
#include "omx/model/flatten.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/servo.hpp"
#include "omx/ode/solve.hpp"
#include "omx/parser/parser.hpp"

namespace omx::analysis {
namespace {

struct ModelUnderTest {
  std::unique_ptr<expr::Context> ctx;
  std::unique_ptr<model::FlatSystem> flat;
  DependencyInfo deps;
  Partition part;
};

ModelUnderTest prepare(const std::string& src) {
  ModelUnderTest s;
  s.ctx = std::make_unique<expr::Context>();
  s.flat = std::make_unique<model::FlatSystem>(
      model::flatten(parser::parse_model(src, *s.ctx)));
  s.deps = analyze_dependencies(*s.flat);
  s.part = partition_by_scc(*s.flat, s.deps);
  return s;
}

ModelUnderTest prepare(model::Model (*builder)(expr::Context&)) {
  ModelUnderTest s;
  s.ctx = std::make_unique<expr::Context>();
  s.flat = std::make_unique<model::FlatSystem>(
      model::flatten(builder(*s.ctx)));
  s.deps = analyze_dependencies(*s.flat);
  s.part = partition_by_scc(*s.flat, s.deps);
  return s;
}

std::vector<double> monolithic_final(const model::FlatSystem& flat,
                                     double t0, double tend,
                                     const ode::Tolerances& tol) {
  ode::Problem p;
  p.n = flat.num_states();
  p.set_rhs([&flat](double t, std::span<const double> y,
                   std::span<double> f) { flat.eval_rhs(t, y, f); });
  p.t0 = t0;
  p.tend = tend;
  for (const auto& s : flat.states()) {
    p.y0.push_back(s.start);
  }
  ode::SolverOptions o;
  o.tol = tol;
  o.record_every = 1u << 30;
  const auto sol = ode::solve(p, ode::Method::kDopri5, o);
  return {sol.final_state().begin(), sol.final_state().end()};
}

TEST(SubsystemSolver, IndependentPairsMatchMonolithic) {
  ModelUnderTest s = prepare(R"(
model M
  class Pair(w)
    var x start 1, v start 0;
    eq der(x) == v;
    eq der(v) == -w*w*x;
  end
  instance p[1..3] : Pair(index);
end)");
  ASSERT_EQ(s.part.num_subsystems(), 3u);

  PartitionedSolveOptions opts;
  opts.tol.rtol = 1e-9;
  opts.tol.atol = 1e-11;
  const PartitionedSolution ps =
      solve_partitioned(*s.flat, s.part, 0.0, 3.0, opts);
  // Independent oscillators: exact solution cos(w t) per pair.
  for (int i = 1; i <= 3; ++i) {
    const int xi = s.flat->state_index(
        s.ctx->symbol("p[" + std::to_string(i) + "].x"));
    EXPECT_NEAR(ps.final_state[static_cast<std::size_t>(xi)],
                std::cos(i * 3.0), 1e-6)
        << "pair " << i;
  }
}

TEST(SubsystemSolver, PipelineChainMatchesMonolithic) {
  ModelUnderTest s = prepare(R"(
model M
  class Chain
    var a start 1, b start 0, c start 0;
    eq der(a) == -a;
    eq der(b) == a - 2*b;
    eq der(c) == b - 0.5*c;
  end
  instance ch : Chain;
end)");
  ASSERT_EQ(s.part.num_subsystems(), 3u);
  ASSERT_EQ(s.part.pipeline_depth(), 3u);

  PartitionedSolveOptions opts;
  opts.tol.rtol = 1e-9;
  opts.tol.atol = 1e-11;
  const PartitionedSolution ps =
      solve_partitioned(*s.flat, s.part, 0.0, 2.0, opts);
  const auto mono = monolithic_final(*s.flat, 0.0, 2.0, opts.tol);
  for (std::size_t i = 0; i < mono.size(); ++i) {
    // Interpolated upstream coupling limits agreement to ~O(h^2).
    EXPECT_NEAR(ps.final_state[i], mono[i], 1e-4) << s.flat->state_name(i);
  }
}

TEST(SubsystemSolver, HydroMatchesMonolithic) {
  ModelUnderTest s = prepare(models::build_hydro);
  PartitionedSolveOptions opts;
  opts.tol.rtol = 1e-8;
  opts.tol.atol = 1e-10;
  const PartitionedSolution ps =
      solve_partitioned(*s.flat, s.part, 0.0, 30.0, opts);
  const auto mono = monolithic_final(*s.flat, 0.0, 30.0, opts.tol);
  for (std::size_t i = 0; i < mono.size(); ++i) {
    EXPECT_NEAR(ps.final_state[i], mono[i],
                2e-3 * std::max(1.0, std::fabs(mono[i])))
        << s.flat->state_name(i);
  }
}

TEST(SubsystemSolver, StepSizesAreIndependent) {
  // Fast gate servos vs the slow regulator filter: the multirate win.
  ModelUnderTest s = prepare(models::build_hydro);
  PartitionedSolveOptions opts;
  opts.tol.rtol = 1e-7;
  const PartitionedSolution ps =
      solve_partitioned(*s.flat, s.part, 0.0, 60.0, opts);

  // Find the subsystem holding reg.rip (slow) and one gate loop (fast).
  const int rip = s.flat->state_index(s.ctx->symbol("reg.rip"));
  const int ang = s.flat->state_index(s.ctx->symbol("g1.angle"));
  std::size_t sub_rip = 0, sub_ang = 0;
  for (std::size_t c = 0; c < s.part.num_subsystems(); ++c) {
    for (int st : s.part.subsystems[c].states) {
      if (st == rip) sub_rip = c;
      if (st == ang) sub_ang = c;
    }
  }
  const double h_rip = ps.average_step(sub_rip, 0.0, 60.0);
  const double h_ang = ps.average_step(sub_ang, 0.0, 60.0);
  EXPECT_GT(h_rip, 3.0 * h_ang);  // the integrator takes far larger steps
}

TEST(SubsystemSolver, ServoAxesAreDecoupled) {
  ModelUnderTest s = prepare(models::build_servo);
  PartitionedSolveOptions opts;
  opts.tol.rtol = 1e-8;
  const PartitionedSolution ps =
      solve_partitioned(*s.flat, s.part, 0.0, 5.0, opts);
  const auto mono = monolithic_final(*s.flat, 0.0, 5.0, opts.tol);
  for (std::size_t i = 0; i < mono.size(); ++i) {
    EXPECT_NEAR(ps.final_state[i], mono[i],
                1e-4 * std::max(1.0, std::fabs(mono[i])));
  }
  EXPECT_EQ(ps.per_subsystem.size(), 3u);
}

TEST(SubsystemSolver, SingleSccDegeneratesToMonolithic) {
  ModelUnderTest s = prepare(R"(
model M
  class A
    var x start 1, y start 0;
    eq der(x) == y;
    eq der(y) == -x;
  end
  instance o : A;
end)");
  ASSERT_EQ(s.part.num_subsystems(), 1u);
  PartitionedSolveOptions opts;
  opts.tol.rtol = 1e-10;
  const PartitionedSolution ps =
      solve_partitioned(*s.flat, s.part, 0.0, 6.0, opts);
  EXPECT_NEAR(ps.final_state[0], std::cos(6.0), 1e-7);
}

}  // namespace
}  // namespace omx::analysis
