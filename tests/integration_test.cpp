// End-to-end pipeline tests: parse/build -> flatten -> analyze -> codegen
// -> vm -> parallel runtime -> solver, including solving through the
// thread-pool ParallelRhs and the symbolic-Jacobian BDF path.
#include <gtest/gtest.h>

#include <cmath>

#include "omx/models/bearing2d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/ode/auto_switch.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/vm/interp.hpp"

namespace omx::pipeline {
namespace {

TEST(Pipeline, CompileProducesConsistentArtifacts) {
  CompiledModel cm = compile_model(models::build_hydro);
  EXPECT_EQ(cm.deps.deps.size(), cm.n());
  EXPECT_EQ(cm.partition.scc.component.size(), cm.n());
  EXPECT_FALSE(cm.plan.tasks.empty());
  EXPECT_EQ(cm.parallel_program.n_state, cm.n());
  EXPECT_EQ(cm.serial_program.n_state, cm.n());
  // Every state has exactly one ydot contribution set (no splits here).
  std::vector<int> covered(cm.n(), 0);
  for (const auto& t : cm.parallel_program.tasks) {
    for (const auto& o : t.outputs) {
      covered[o.slot] += 1;
    }
  }
  for (int c : covered) {
    EXPECT_EQ(c, 1);
  }
}

TEST(Pipeline, ReferenceSerialAndParallelRhsAgree) {
  CompiledModel cm = compile_model([](expr::Context& ctx) {
    models::BearingConfig cfg;
    cfg.n_rollers = 5;
    return models::build_bearing(ctx, cfg);
  });
  std::vector<double> y(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y[i] = cm.flat->states()[i].start;
  }
  std::vector<double> a(cm.n()), b(cm.n()), c(cm.n());
  cm.make_kernel(exec::Backend::kReference).kernel()(0.0, y, a);
  cm.make_kernel(exec::Backend::kInterp).kernel()(0.0, y, b);

  runtime::ParallelRhsOptions opts;
  opts.pool.num_workers = 3;
  KernelOptions ko;
  ko.lanes = 3;
  exec::KernelInstance pk = cm.make_kernel(exec::Backend::kInterp, ko);
  runtime::ParallelRhs par(pk.kernel(), opts);
  par.eval(0.0, y, c);

  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_NEAR(b[i], a[i], 1e-9 * std::max(1.0, std::fabs(a[i])));
    EXPECT_NEAR(c[i], a[i], 1e-9 * std::max(1.0, std::fabs(a[i])));
  }
}

TEST(Pipeline, SolveOscillatorThroughParallelRuntime) {
  // The full paper pipeline: solver(supervisor) + parallel workers as the
  // RHS of an actual integration run.
  CompileOptions copts;
  copts.tasks.min_ops_per_task = 0;
  CompiledModel cm = compile_model(models::build_oscillator, copts);
  runtime::ParallelRhsOptions opts;
  opts.pool.num_workers = 2;
  KernelOptions ko;
  ko.lanes = 2;
  exec::KernelInstance pk = cm.make_kernel(exec::Backend::kInterp, ko);
  runtime::ParallelRhs par(pk.kernel(), opts);

  // ParallelRhs is itself a callable lvalue: bind it as the RHS view.
  ode::Problem p = cm.make_problem(par, 0.0, 6.0);
  ode::SolverOptions fo;
  fo.dt = 1e-3;
  const ode::Solution s = ode::solve(p, ode::Method::kRk4, fo);
  EXPECT_NEAR(s.final_state()[0], std::cos(6.0), 1e-6);
  EXPECT_EQ(par.rhs_calls(), s.stats.rhs_calls);
}

TEST(Pipeline, SymbolicJacobianDrivesBdf) {
  CompileOptions copts;
  copts.build_jacobian = true;
  CompiledModel cm = compile_model(models::build_oscillator, copts);

  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 2.0);
  cm.bind_symbolic_jacobian(p);
  ode::SolverOptions o;
  o.bdf_max_order = 2;
  o.tol.rtol = 1e-8;
  o.tol.atol = 1e-10;
  const ode::Solution s = ode::solve(p, ode::Method::kBdf, o);
  EXPECT_NEAR(s.final_state()[0], std::cos(2.0), 1e-4);
  EXPECT_GT(s.stats.jac_calls, 0u);
}

TEST(Pipeline, SymbolicJacobianMatchesStructure) {
  CompileOptions copts;
  copts.build_jacobian = true;
  CompiledModel cm = compile_model(models::build_oscillator, copts);
  la::Matrix j(2, 2);
  std::vector<double> y{0.3, -0.2};
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 1.0);
  cm.bind_symbolic_jacobian(p);
  p.jacobian(0.0, y, j);
  EXPECT_DOUBLE_EQ(j(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(j(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(j(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(j(1, 1), 0.0);
}

TEST(Pipeline, HydroSolvesIdenticallyViaAllRhsPaths) {
  CompiledModel cm = compile_model(models::build_hydro);
  ode::SolverOptions fo;
  fo.dt = 0.01;
  fo.record_every = 1000;

  ode::Problem pr = cm.make_problem(exec::Backend::kReference, 0.0, 5.0);
  ode::Problem ps = cm.make_problem(exec::Backend::kInterp, 0.0, 5.0);
  const ode::Solution sr = ode::solve(pr, ode::Method::kRk4, fo);
  const ode::Solution ss = ode::solve(ps, ode::Method::kRk4, fo);
  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_NEAR(ss.final_state()[i], sr.final_state()[i],
                1e-9 * std::max(1.0, std::fabs(sr.final_state()[i])));
  }
}

TEST(Pipeline, LsodaLikeSolvesHydro) {
  CompiledModel cm = compile_model(models::build_hydro);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 120.0);
  ode::AutoSwitchOptions o;
  o.tol.rtol = 1e-6;
  o.record_every = 8;
  const ode::AutoSwitchResult r = ode::auto_switch(p, o);
  const int level = cm.flat->state_index(cm.ctx->symbol("dam.level"));
  const double l =
      r.solution.final_state()[static_cast<std::size_t>(level)];
  EXPECT_GT(l, 9.0);
  EXPECT_LT(l, 11.0);
}

TEST(Pipeline, TaskSplittingSurvivesEndToEnd) {
  // Force splitting on the bearing and verify the solution still matches
  // the unsplit pipeline.
  auto builder = [](expr::Context& ctx) {
    models::BearingConfig cfg;
    cfg.n_rollers = 4;
    return models::build_bearing(ctx, cfg);
  };
  CompiledModel plain = compile_model(builder);
  CompileOptions split_opts;
  split_opts.tasks.max_ops_per_task = 40;
  CompiledModel split = compile_model(builder, split_opts);
  EXPECT_GT(split.plan.tasks.size(), plain.plan.tasks.size());

  std::vector<double> y(plain.n());
  for (std::size_t i = 0; i < plain.n(); ++i) {
    y[i] = plain.flat->states()[i].start;
  }
  std::vector<double> a(plain.n()), b(plain.n());
  vm::Workspace wa(plain.parallel_program), wb(split.parallel_program);
  vm::eval_rhs_serial(plain.parallel_program, 0.0, y, a, wa);
  vm::eval_rhs_serial(split.parallel_program, 0.0, y, b, wb);
  for (std::size_t i = 0; i < plain.n(); ++i) {
    EXPECT_NEAR(b[i], a[i], 1e-8 * std::max(1.0, std::fabs(a[i])));
  }
}

}  // namespace
}  // namespace omx::pipeline
