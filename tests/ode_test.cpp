// Non-stiff solver suite: exactness on known solutions, convergence
// orders, error control, and the Solution container. All solves go
// through the unified ode::solve entry point; one test pins the
// deprecated per-driver wrappers to the same results.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include <algorithm>

#include "omx/obs/recorder.hpp"
#include "omx/ode/adams.hpp"
#include "omx/ode/dopri5.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/ode/events.hpp"
#include "omx/ode/fixed_step.hpp"
#include "omx/ode/solve.hpp"

namespace omx::ode {
namespace {

/// y' = -y, y(0) = 1, y(t) = exp(-t).
Problem decay() {
  Problem p;
  p.n = 1;
  p.set_rhs([](double, std::span<const double> y, std::span<double> f) {
    f[0] = -y[0];
  });
  p.t0 = 0.0;
  p.tend = 2.0;
  p.y0 = {1.0};
  return p;
}

/// x' = y, y' = -x: circle; exact (cos t, -sin t).
Problem oscillator(double tend) {
  Problem p;
  p.n = 2;
  p.set_rhs([](double, std::span<const double> y, std::span<double> f) {
    f[0] = y[1];
    f[1] = -y[0];
  });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {1.0, 0.0};
  return p;
}

double final_error_decay(const Solution& s) {
  return std::fabs(s.final_state()[0] - std::exp(-2.0));
}

SolverOptions with_dt(double dt) {
  SolverOptions o;
  o.dt = dt;
  return o;
}

TEST(ProblemValidate, RejectsBadSetups) {
  Problem p = decay();
  p.y0.clear();
  EXPECT_THROW(p.validate(), omx::Error);
  p = decay();
  p.tend = p.t0;
  p.validate();  // zero-step solve is legal (streams one row + finish)
  p.tend = p.t0 - 1.0;
  EXPECT_THROW(p.validate(), omx::Error);
  p = decay();
  p.rhs = nullptr;
  EXPECT_THROW(p.validate(), omx::Error);
}

TEST(ProblemValidate, RejectsKernelArityMismatch) {
  Problem p = decay();
  p.rhs_arity = 2;  // kernel says 2 states, problem says 1
  EXPECT_THROW(p.validate(), omx::Error);
  p.rhs_arity = 1;
  p.validate();
}

TEST(Euler, FirstOrderConvergence) {
  const Problem p = decay();
  const double e1 =
      final_error_decay(solve(p, Method::kExplicitEuler, with_dt(1e-3)));
  const double e2 =
      final_error_decay(solve(p, Method::kExplicitEuler, with_dt(5e-4)));
  EXPECT_NEAR(e1 / e2, 2.0, 0.1);  // halving h halves the error
}

TEST(Rk4, FourthOrderConvergence) {
  const Problem p = decay();
  const double e1 = final_error_decay(solve(p, Method::kRk4, with_dt(0.1)));
  const double e2 = final_error_decay(solve(p, Method::kRk4, with_dt(0.05)));
  EXPECT_NEAR(e1 / e2, 16.0, 2.0);
}

TEST(Rk4, HitsTendExactlyWithNonDividingStep) {
  Problem p = decay();
  p.tend = 1.0;
  // 0.3 * 4 > 1.0: final step clipped
  const Solution s = solve(p, Method::kRk4, with_dt(0.3));
  EXPECT_DOUBLE_EQ(s.final_time(), 1.0);
}

TEST(Rk4, EnergyNearlyConservedOnOscillator) {
  const Problem p = oscillator(20.0);
  const Solution s = solve(p, Method::kRk4, with_dt(1e-3));
  const auto y = s.final_state();
  EXPECT_NEAR(y[0] * y[0] + y[1] * y[1], 1.0, 1e-9);
}

TEST(Dopri5, MeetsToleranceOnOscillator) {
  const Problem p = oscillator(10.0);
  SolverOptions o;
  o.tol.rtol = 1e-8;
  o.tol.atol = 1e-10;
  const Solution s = solve(p, Method::kDopri5, o);
  EXPECT_NEAR(s.final_state()[0], std::cos(10.0), 1e-6);
  EXPECT_NEAR(s.final_state()[1], -std::sin(10.0), 1e-6);
}

TEST(Dopri5, TighterToleranceCostsMoreAndHelps) {
  const Problem p = oscillator(10.0);
  SolverOptions loose;
  loose.tol.rtol = 1e-4;
  loose.tol.atol = 1e-6;
  SolverOptions tight;
  tight.tol.rtol = 1e-10;
  tight.tol.atol = 1e-12;
  const Solution sl = solve(p, Method::kDopri5, loose);
  const Solution st = solve(p, Method::kDopri5, tight);
  EXPECT_GT(st.stats.rhs_calls, sl.stats.rhs_calls);
  const double el = std::fabs(sl.final_state()[0] - std::cos(10.0));
  const double et = std::fabs(st.final_state()[0] - std::cos(10.0));
  EXPECT_LT(et, el);
}

TEST(Dopri5, AdaptsToVaryingTimescale) {
  // y' = -50 (y - sin t) + cos t: fast transient, then slow tracking.
  Problem p;
  p.n = 1;
  p.set_rhs([](double t, std::span<const double> y, std::span<double> f) {
    f[0] = -50.0 * (y[0] - std::sin(t)) + std::cos(t);
  });
  p.t0 = 0.0;
  p.tend = 3.0;
  p.y0 = {1.0};
  SolverOptions o;
  o.tol.rtol = 1e-7;
  o.tol.atol = 1e-9;
  const Solution s = solve(p, Method::kDopri5, o);
  EXPECT_NEAR(s.final_state()[0], std::sin(3.0), 1e-4);
  EXPECT_GT(s.stats.steps, 10u);
}

TEST(Dopri5, ReportsRejectionsUnderRoughness) {
  Problem p;
  p.n = 1;
  p.set_rhs([](double t, std::span<const double> y, std::span<double> f) {
    f[0] = (t < 1.0 ? 1.0 : -300.0 * y[0]);  // kink at t = 1
  });
  p.t0 = 0.0;
  p.tend = 2.0;
  p.y0 = {0.0};
  const Solution s = solve(p, Method::kDopri5, {});
  EXPECT_GT(s.stats.rejected, 0u);
}

TEST(Adams, MatchesExactSolution) {
  const Problem p = oscillator(8.0);
  SolverOptions o;
  o.tol.rtol = 1e-8;
  o.tol.atol = 1e-10;
  const Solution s = solve(p, Method::kAdamsPece, o);
  EXPECT_NEAR(s.final_state()[0], std::cos(8.0), 1e-5);
  EXPECT_NEAR(s.final_state()[1], -std::sin(8.0), 1e-5);
}

TEST(Adams, FewerRhsCallsPerStepThanRk4) {
  // The multistep advantage: 2 RHS calls per accepted step vs RK4's 4.
  // Pinning h (h0 == hmax) isolates the steady-state PECE cost from the
  // RK4-based history rebuilds that step-size changes require.
  const Problem p = oscillator(20.0);
  SolverOptions ao;
  ao.tol.rtol = 1e-6;
  ao.tol.atol = 1e-8;
  ao.h0 = 0.02;
  ao.hmax = 0.02;
  const Solution sa = solve(p, Method::kAdamsPece, ao);
  const double ea = std::fabs(sa.final_state()[0] - std::cos(20.0));
  EXPECT_LT(ea, 1e-3);
  EXPECT_LT(sa.stats.rhs_calls, 3u * sa.stats.steps);
}

TEST(Adams, StepperRestartWorks) {
  const Problem p = oscillator(10.0);
  AdamsStepper st(p, {});
  const double t_initial = st.t();
  EXPECT_GT(t_initial, 0.0);  // startup advanced the RK4 bootstrap
  while (st.t() < 5.0) {
    st.step();
  }
  std::vector<double> y(st.y().begin(), st.y().end());
  st.restart(st.t(), y, 0.0);
  while (st.t() < p.tend) {
    st.step();
  }
  EXPECT_NEAR(st.y()[0], std::cos(10.0), 1e-4);
}

// ode::solve is the single public entry point (the historical
// per-method wrappers are gone); its dispatch must reach the same
// detail:: driver implementations bit for bit.
TEST(SolveDispatch, MatchesDetailDrivers) {
  const Problem p = oscillator(5.0);
  FixedStepOptions fo{.dt = 1e-3};
  const Solution direct = detail::rk4(p, fo);
  const Solution unified = solve(p, Method::kRk4, with_dt(1e-3));
  EXPECT_DOUBLE_EQ(direct.final_state()[0], unified.final_state()[0]);

  Dopri5Options dopts;
  const Solution dd = detail::dopri5(p, dopts);
  const Solution du = solve(p, Method::kDopri5, {});
  EXPECT_DOUBLE_EQ(dd.final_state()[0], du.final_state()[0]);
}

TEST(Solution, InterpolatesLinearly) {
  Solution s;
  const std::vector<double> a{0.0}, b{10.0};
  s.append(0.0, a);
  s.append(1.0, b);
  EXPECT_DOUBLE_EQ(s.at(0.5)[0], 5.0);
  EXPECT_DOUBLE_EQ(s.at(-1.0)[0], 0.0);   // clamped
  EXPECT_DOUBLE_EQ(s.at(2.0)[0], 10.0);   // clamped
}

// --------------------------------------------------- edge cases

TEST(ProblemValidate, RejectsEmptySystem) {
  Problem p = decay();
  p.n = 0;
  p.y0.clear();
  EXPECT_THROW(p.validate(), omx::Error);
}

TEST(ProblemValidate, RejectsBatchArityMismatch) {
  Problem p = decay();
  p.batch_arity = 2;  // batched kernel says 2 states, problem says 1
  EXPECT_THROW(p.validate(), omx::Error);
  p.batch_arity = 1;
  p.validate();
}

/// y' = -y until t = 0.5, then the RHS returns `poison`.
Problem poisoned_decay(double poison) {
  Problem p;
  p.n = 1;
  p.set_rhs([poison](double t, std::span<const double> y,
                     std::span<double> f) {
    f[0] = t < 0.5 ? -y[0] : poison;
  });
  p.t0 = 0.0;
  p.tend = 2.0;
  p.y0 = {1.0};
  return p;
}

void expect_nonfinite_diagnostic(Method m, const SolverOptions& o,
                                 double poison) {
  const Problem p = poisoned_decay(poison);
  try {
    solve(p, m, o);
    FAIL() << "expected omx::Error for poison " << poison;
  } catch (const omx::Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << "diagnostic should name the real cause, got: " << e.what();
  }
}

TEST(SolverDiagnostics, NanRhsFailsWithCleanMessage) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  expect_nonfinite_diagnostic(Method::kExplicitEuler, with_dt(1e-2), nan);
  expect_nonfinite_diagnostic(Method::kRk4, with_dt(1e-2), nan);
  expect_nonfinite_diagnostic(Method::kDopri5, {}, nan);
  expect_nonfinite_diagnostic(Method::kAdamsPece, {}, nan);
}

TEST(SolverDiagnostics, InfRhsFailsWithCleanMessage) {
  const double inf = std::numeric_limits<double>::infinity();
  expect_nonfinite_diagnostic(Method::kExplicitEuler, with_dt(1e-2), inf);
  expect_nonfinite_diagnostic(Method::kRk4, with_dt(1e-2), inf);
  expect_nonfinite_diagnostic(Method::kDopri5, {}, inf);
}

// ------------------------------------------------ ensemble driver
//
// solve_ensemble's scenario lanes are independent, so degenerate specs
// must reproduce the plain scalar drivers bit for bit — not just to
// tolerance.

void expect_solutions_identical(const Solution& a, const Solution& b) {
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b.time(i), a.time(i)) << "step " << i;
    const auto ya = a.state(i);
    const auto yb = b.state(i);
    ASSERT_EQ(yb.size(), ya.size());
    for (std::size_t q = 0; q < ya.size(); ++q) {
      EXPECT_EQ(yb[q], ya[q]) << "step " << i << " slot " << q;
    }
  }
  EXPECT_EQ(b.stats.steps, a.stats.steps);
  EXPECT_EQ(b.stats.rhs_calls, a.stats.rhs_calls);
  EXPECT_EQ(b.stats.rejected, a.stats.rejected);
}

TEST(Ensemble, ZeroScenariosYieldEmptyResult) {
  const EnsembleResult r =
      solve_ensemble(decay(), Method::kDopri5, {}, EnsembleSpec{});
  EXPECT_TRUE(r.solutions.empty());
}

TEST(Ensemble, OneScenarioDegeneratesToPlainSolve) {
  const Problem p = oscillator(3.0);
  for (const Method m :
       {Method::kExplicitEuler, Method::kRk4, Method::kDopri5}) {
    const SolverOptions o = with_dt(1e-3);
    const Solution plain = solve(p, m, o);
    EnsembleSpec spec;
    spec.initial_states = {p.y0};
    spec.max_batch = 4;
    const EnsembleResult r = solve_ensemble(p, m, o, spec);
    ASSERT_EQ(r.solutions.size(), 1u);
    expect_solutions_identical(plain, r.solutions[0]);
  }
}

TEST(Ensemble, ScenariosMatchIndividualSolves) {
  // Perturbed starts give every scenario its own adaptive step history,
  // so lanes retire at different rounds and the batch repacks mid-run.
  const Problem base = oscillator(4.0);
  EnsembleSpec spec;
  for (std::size_t s = 0; s < 5; ++s) {
    spec.initial_states.push_back(
        {1.0 + 0.2 * static_cast<double>(s),
         0.05 * static_cast<double>(s)});
  }
  spec.workers = 2;
  spec.max_batch = 3;
  const EnsembleResult r =
      solve_ensemble(base, Method::kDopri5, {}, spec);
  ASSERT_EQ(r.solutions.size(), spec.initial_states.size());
  for (std::size_t s = 0; s < spec.initial_states.size(); ++s) {
    Problem p = base;
    p.y0 = spec.initial_states[s];
    expect_solutions_identical(solve(p, Method::kDopri5, {}),
                               r.solutions[s]);
  }
}

TEST(Ensemble, StiffMethodsFallBackToScenarioAtATime) {
  const Problem base = oscillator(2.0);
  EnsembleSpec spec;
  spec.initial_states = {{1.0, 0.0}, {0.5, 0.25}, {2.0, -0.5}};
  spec.workers = 2;
  const EnsembleResult r =
      solve_ensemble(base, Method::kAdamsPece, {}, spec);
  ASSERT_EQ(r.solutions.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    Problem p = base;
    p.y0 = spec.initial_states[s];
    expect_solutions_identical(solve(p, Method::kAdamsPece, {}),
                               r.solutions[s]);
  }
}

TEST(Ensemble, FlightRecorderStaysWithinRingBudgetAt256Scenarios) {
  // The ISSUE acceptance bar: a 256-scenario ensemble with the flight
  // recorder armed must fit the default per-thread ring (no drops), and
  // every scenario's pack and retire must be on the log.
  obs::Recorder& rec = obs::Recorder::global();
  rec.start();
  const Problem base = oscillator(2.0);
  EnsembleSpec spec;
  for (std::size_t s = 0; s < 256; ++s) {
    spec.initial_states.push_back(
        {1.0 + 0.01 * static_cast<double>(s),
         -0.5 + 0.005 * static_cast<double>(s)});
  }
  spec.workers = 4;
  spec.max_batch = 16;
  const EnsembleResult r =
      solve_ensemble(base, Method::kDopri5, {}, spec);
  rec.stop();
  ASSERT_EQ(r.solutions.size(), 256u);

  EXPECT_EQ(rec.dropped(), 0u) << "ensemble run overflowed the ring";
  std::size_t packs = 0;
  std::size_t retires = 0;
  std::size_t refills = 0;
  for (const obs::StepEvent& ev : rec.events()) {
    switch (ev.kind) {
      case obs::StepEventKind::kLanePack: ++packs; break;
      case obs::StepEventKind::kLaneRefill: ++refills; break;
      case obs::StepEventKind::kLaneRetire: ++retires; break;
      default: break;
    }
  }
  // Every scenario enters a batch exactly once (first fill or mid-run
  // refill) and leaves exactly once.
  EXPECT_EQ(packs + refills, 256u);
  EXPECT_EQ(retires, 256u);
  EXPECT_GT(refills, 0u) << "staggered retirement never refilled a lane";
}

TEST(Ensemble, RejectsMismatchedScenarioSize) {
  EnsembleSpec spec;
  spec.initial_states = {{1.0, 0.0}, {1.0}};  // second lane has wrong n
  EXPECT_THROW(solve_ensemble(oscillator(1.0), Method::kRk4, with_dt(1e-2),
                              spec),
               omx::Error);
}

TEST(Solution, RecordEveryThinsOutput) {
  const Problem p = decay();
  SolverOptions all = with_dt(1e-3);
  all.record_every = 1;
  SolverOptions thin = with_dt(1e-3);
  thin.record_every = 100;
  const Solution sa = solve(p, Method::kExplicitEuler, all);
  const Solution st = solve(p, Method::kExplicitEuler, thin);
  EXPECT_GT(sa.size(), 50u * st.size());
  EXPECT_DOUBLE_EQ(sa.final_time(), st.final_time());
}

// ------------------------------------------------------ dense output
// The public interpolants behind event localization (ode/events.hpp).

/// One DOPRI5 step of y' = f from (t, y), returning the stages the
/// continuous extension consumes. Standard Dormand–Prince tableau.
struct DpStep {
  double y1 = 0.0;
  double k1 = 0.0, k3 = 0.0, k4 = 0.0, k5 = 0.0, k6 = 0.0, k7 = 0.0;
};

template <typename F>
DpStep dopri5_step(F f, double t, double y, double h) {
  DpStep s;
  s.k1 = f(t, y);
  const double k2 = f(t + h / 5.0, y + h * (s.k1 / 5.0));
  s.k3 = f(t + 3.0 * h / 10.0, y + h * (3.0 / 40.0 * s.k1 + 9.0 / 40.0 * k2));
  s.k4 = f(t + 4.0 * h / 5.0,
           y + h * (44.0 / 45.0 * s.k1 - 56.0 / 15.0 * k2 + 32.0 / 9.0 * s.k3));
  s.k5 = f(t + 8.0 * h / 9.0,
           y + h * (19372.0 / 6561.0 * s.k1 - 25360.0 / 2187.0 * k2 +
                    64448.0 / 6561.0 * s.k3 - 212.0 / 729.0 * s.k4));
  s.k6 = f(t + h,
           y + h * (9017.0 / 3168.0 * s.k1 - 355.0 / 33.0 * k2 +
                    46732.0 / 5247.0 * s.k3 + 49.0 / 176.0 * s.k4 -
                    5103.0 / 18656.0 * s.k5));
  s.y1 = y + h * (35.0 / 384.0 * s.k1 + 500.0 / 1113.0 * s.k3 +
                  125.0 / 192.0 * s.k4 - 2187.0 / 6784.0 * s.k5 +
                  11.0 / 84.0 * s.k6);
  s.k7 = f(t + h, s.y1);
  return s;
}

/// Max interpolation error of the dopri5 continuous extension against
/// exp(t) over one step of size h from t = 0.
double dopri5_dense_error(double h) {
  auto f = [](double, double y) { return y; };
  const DpStep s = dopri5_step(f, 0.0, 1.0, h);
  const double y0[] = {1.0};
  const double y1[] = {s.y1};
  const double k1[] = {s.k1}, k3[] = {s.k3}, k4[] = {s.k4}, k5[] = {s.k5},
               k6[] = {s.k6}, k7[] = {s.k7};
  const DenseOutput dense =
      DenseOutput::dopri5(0.0, h, y0, y1, k1, k3, k4, k5, k6, k7);
  double worst = 0.0;
  double out[1];
  for (int i = 1; i < 10; ++i) {
    const double t = h * i / 10.0;
    dense.eval(t, out);
    worst = std::max(worst, std::fabs(out[0] - std::exp(t)));
  }
  return worst;
}

TEST(DenseOutput, Dopri5ContinuousExtensionIsFourthOrder) {
  // A 4th-order interpolant has O(h^5) error: halving h must shrink the
  // worst in-step error by ~2^5. Pin > 20 to allow endpoint effects.
  const double e1 = dopri5_dense_error(0.4);
  const double e2 = dopri5_dense_error(0.2);
  const double e3 = dopri5_dense_error(0.1);
  EXPECT_GT(e1 / e2, 20.0);
  EXPECT_GT(e2 / e3, 20.0);
  // Interpolation stays within a modest multiple of the step error.
  EXPECT_LT(e3, 1e-8);
  // Endpoints reproduce the step exactly.
  const DpStep s = dopri5_step([](double, double y) { return y; },
                               0.0, 1.0, 0.1);
  const double y0[] = {1.0};
  const double y1[] = {s.y1};
  const double k1[] = {s.k1}, k3[] = {s.k3}, k4[] = {s.k4}, k5[] = {s.k5},
               k6[] = {s.k6}, k7[] = {s.k7};
  const DenseOutput d =
      DenseOutput::dopri5(0.0, 0.1, y0, y1, k1, k3, k4, k5, k6, k7);
  double out[1];
  d.eval(0.0, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  d.eval(0.1, out);
  EXPECT_DOUBLE_EQ(out[0], s.y1);
  EXPECT_DOUBLE_EQ(d.t0(), 0.0);
  EXPECT_DOUBLE_EQ(d.t1(), 0.1);
}

TEST(DenseOutput, HermiteReproducesCubicsExactly) {
  // y = t^3 - 2t: cubic Hermite data at t=0 and t=2.
  auto y = [](double t) { return t * t * t - 2.0 * t; };
  auto dy = [](double t) { return 3.0 * t * t - 2.0; };
  const double y0[] = {y(0.0)}, f0[] = {dy(0.0)};
  const double y1[] = {y(2.0)}, f1[] = {dy(2.0)};
  const DenseOutput d = DenseOutput::hermite(0.0, y0, f0, 2.0, y1, f1);
  double out[1];
  for (double t : {0.0, 0.37, 1.0, 1.73, 2.0}) {
    d.eval(t, out);
    EXPECT_NEAR(out[0], y(t), 1e-13) << "t=" << t;
  }
}

TEST(DenseOutput, LagrangeReproducesHistoryPolynomial) {
  // Three uniform nodes (newest first at t=1, spacing 0.25) of a
  // quadratic: the 3-point Lagrange form is exact everywhere between.
  auto y = [](double t) { return 2.0 * t * t - t + 0.5; };
  std::vector<std::vector<double>> hist = {
      {y(1.0)}, {y(0.75)}, {y(0.5)}};
  const DenseOutput d = DenseOutput::lagrange(1.0, 0.25, hist, 3);
  double out[1];
  for (double t : {0.5, 0.6, 0.75, 0.9, 1.0}) {
    d.eval(t, out);
    EXPECT_NEAR(out[0], y(t), 1e-13) << "t=" << t;
  }
}

}  // namespace
}  // namespace omx::ode
