// Differential tests for the sparse Jacobian pipeline: structural
// patterns vs finite-difference probes, colored compressed FD vs the
// dense one-column-at-a-time Jacobian, sparse LU vs dense LU (bitwise,
// by design), dense-vs-sparse BDF trajectories, and the LSODA-style
// reuse policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "omx/analysis/sparsity.hpp"
#include "omx/la/lu.hpp"
#include "omx/la/sparse.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/models/servo.hpp"
#include "omx/ode/jacobian.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace omx {
namespace {

using la::CsrMatrix;
using la::SparsityPattern;

/// RAII environment override; restores the previous value on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

pipeline::CompiledModel compile_with_jacobian(
    const pipeline::ModelBuilder& builder) {
  pipeline::CompileOptions opts;
  opts.build_jacobian = true;
  return pipeline::compile_model(builder, opts);
}

pipeline::ModelBuilder heat_builder(int n_cells) {
  return [n_cells](expr::Context& ctx) {
    models::Heat1dConfig cfg;
    cfg.n_cells = n_cells;
    return models::build_heat1d(ctx, cfg);
  };
}

// -- structural pattern vs FD probe ------------------------------------------

void expect_pattern_matches_probe(const pipeline::ModelBuilder& builder,
                                  const char* label) {
  SCOPED_TRACE(label);
  pipeline::CompiledModel cm = pipeline::compile_model(builder);
  ode::Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 1.0);
  ASSERT_TRUE(p.sparsity != nullptr);
  const SparsityPattern probed =
      analysis::probe_sparsity(p.rhs, p.n, p.t0, p.y0);
  EXPECT_EQ(*p.sparsity, probed);
}

TEST(SparsityPattern, MatchesFdProbeOnAllModels) {
  expect_pattern_matches_probe(models::build_oscillator, "oscillator");
  expect_pattern_matches_probe(models::build_servo, "servo");
  expect_pattern_matches_probe(models::build_hydro, "hydro");
  expect_pattern_matches_probe(heat_builder(10), "heat1d");
}

TEST(SparsityPattern, HeatPdeIsTridiagonal) {
  pipeline::CompiledModel cm = pipeline::compile_model(heat_builder(16));
  ASSERT_TRUE(cm.sparsity != nullptr);
  EXPECT_EQ(cm.sparsity->lower_bandwidth(), 1u);
  EXPECT_EQ(cm.sparsity->upper_bandwidth(), 1u);
  EXPECT_EQ(cm.sparsity->nnz(), 3u * 16 - 2);
}

// -- FD increment (LSODA-style scaling) --------------------------------------

TEST(FdIncrement, ScalesWithStateAndCarriesSign) {
  const double sqrt_eps = std::sqrt(2.220446049250313e-16);
  EXPECT_DOUBLE_EQ(ode::fd_increment(0.0), sqrt_eps);
  EXPECT_DOUBLE_EQ(ode::fd_increment(1e8), sqrt_eps * 1e8);
  EXPECT_DOUBLE_EQ(ode::fd_increment(-1e8), -sqrt_eps * 1e8);
  EXPECT_DOUBLE_EQ(ode::fd_increment(0.5), sqrt_eps);       // typ floor
  EXPECT_DOUBLE_EQ(ode::fd_increment(0.5, 0.1), sqrt_eps * 0.5);
}

TEST(FdIncrement, DenseFdAccurateForLargeStates) {
  // f(y) = y^2 at y = 1e8: a fixed absolute increment would lose every
  // significant digit; the scaled increment keeps ~8 digits.
  ode::Problem p;
  p.n = 1;
  p.set_rhs([](double, std::span<const double> y, std::span<double> f) {
    f[0] = y[0] * y[0];
  });
  p.y0 = {1e8};
  la::Matrix jac(1, 1);
  std::uint64_t calls = 0;
  ode::finite_difference_jacobian(p.rhs, 0.0, p.y0, jac, calls);
  EXPECT_EQ(calls, 2u);
  EXPECT_NEAR(jac(0, 0), 2e8, 2e8 * 1e-7);
}

// -- colored compressed FD vs dense FD ---------------------------------------

TEST(ColoredFd, MatchesDenseFdOnHeatPde) {
  pipeline::CompiledModel cm = pipeline::compile_model(heat_builder(24));
  ode::Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 1.0);
  std::shared_ptr<const ode::JacPlan> plan = ode::make_jac_plan(p);
  ASSERT_TRUE(plan != nullptr);
  // Distance-2 coloring of a tridiagonal pattern needs exactly 3 colors.
  EXPECT_EQ(plan->coloring.num_colors, 3);

  // Evaluate off the initial condition so no state is exactly zero.
  std::vector<double> y = p.y0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] += 0.25 + 0.01 * static_cast<double>(i);
  }

  CsrMatrix colored(plan->pattern);
  std::uint64_t colored_calls = 0;
  ode::colored_fd_jacobian(p, *plan, 0.0, y, colored, colored_calls);
  EXPECT_EQ(colored_calls,
            static_cast<std::uint64_t>(plan->coloring.num_colors) + 1);

  la::Matrix dense(p.n, p.n);
  std::uint64_t dense_calls = 0;
  ode::finite_difference_jacobian(p.rhs, 0.0, y, dense, dense_calls);
  EXPECT_EQ(dense_calls, static_cast<std::uint64_t>(p.n) + 1);

  // The compression is exact, not approximate: each equation reads at
  // most one perturbed column per color group, so every compressed
  // difference is the same floating-point expression as the dense one.
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t j = 0; j < p.n; ++j) {
      EXPECT_EQ(colored.at(i, j), dense(i, j)) << "entry " << i << "," << j;
    }
  }
}

TEST(ParallelColoredFd, ThreadedGroupsMatchSerial) {
  pipeline::CompiledModel cm = pipeline::compile_model(heat_builder(32));
  pipeline::KernelOptions kopts;
  kopts.lanes = 4;
  exec::KernelInstance kernel = cm.make_kernel(exec::Backend::kInterp, kopts);
  ode::Problem p = cm.make_problem(kernel, 0.0, 1.0);
  ASSERT_TRUE(p.batch_rhs);
  std::shared_ptr<const ode::JacPlan> plan = ode::make_jac_plan(p);
  ASSERT_TRUE(plan != nullptr);

  std::vector<double> y = p.y0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] += 0.5 + 0.03 * static_cast<double>(i);
  }

  CsrMatrix serial(plan->pattern);
  std::uint64_t serial_calls = 0;
  ode::colored_fd_jacobian(p, *plan, 0.0, y, serial, serial_calls,
                           /*threads=*/1);
  CsrMatrix threaded(plan->pattern);
  std::uint64_t threaded_calls = 0;
  ode::colored_fd_jacobian(p, *plan, 0.0, y, threaded, threaded_calls,
                           /*threads=*/4);
  EXPECT_EQ(serial_calls, threaded_calls);
  ASSERT_EQ(serial.values().size(), threaded.values().size());
  for (std::size_t k = 0; k < serial.values().size(); ++k) {
    EXPECT_EQ(serial.values()[k], threaded.values()[k]) << "slot " << k;
  }
}

// -- symbolic sparse Jacobian tape -------------------------------------------

TEST(SparseJacobianTape, MatchesDenseTapeOnHeatPde) {
  pipeline::CompiledModel cm = compile_with_jacobian(heat_builder(12));
  ASSERT_GT(cm.sparse_jacobian_program.n_regs, 0u);
  ASSERT_TRUE(cm.jac_sparsity != nullptr);
  ode::Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 1.0);
  cm.bind_symbolic_jacobian(p);
  ASSERT_TRUE(p.jacobian);
  ASSERT_TRUE(p.sparse_jacobian);

  std::vector<double> y = p.y0;
  la::Matrix dense(p.n, p.n);
  p.jacobian(0.0, y, dense);
  CsrMatrix sparse(cm.jac_sparsity);
  p.sparse_jacobian(0.0, y, sparse);

  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t j = 0; j < p.n; ++j) {
      EXPECT_EQ(sparse.at(i, j), dense(i, j)) << "entry " << i << "," << j;
    }
  }
}

// -- sparse LU vs dense LU ---------------------------------------------------

CsrMatrix tridiagonal_matrix(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> trips;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) trips.emplace_back(i, i - 1);
    trips.emplace_back(i, i);
    if (i + 1 < n) trips.emplace_back(i, i + 1);
  }
  auto pat = std::make_shared<SparsityPattern>(
      SparsityPattern::from_triplets(n, n, std::move(trips)));
  CsrMatrix a(pat);
  const SparsityPattern& sp = a.pattern();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = sp.row_ptr[i]; k < sp.row_ptr[i + 1]; ++k) {
      const std::size_t j = sp.col_idx[k];
      // Deterministic, non-symmetric, diagonally non-dominant enough to
      // exercise pivoting on some columns.
      a.values()[k] = (i == j)
                          ? 0.5 + 0.125 * static_cast<double>(i % 4)
                          : 1.0 + 0.0625 * static_cast<double>((i + j) % 5);
    }
  }
  return a;
}

TEST(SparseLu, BitwiseIdenticalToDenseLuOnBandedMatrix) {
  const std::size_t n = 12;
  CsrMatrix a = tridiagonal_matrix(n);
  la::SparseLu sparse(a);
  la::LuFactors dense(a.to_dense());

  std::vector<double> b(n), xs(n), xd(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = 1.0 - 0.25 * static_cast<double>(i % 3);
  }
  sparse.solve(b, xs);
  dense.solve(b, xd);
  for (std::size_t i = 0; i < n; ++i) {
    // Same floating-point operations in the same order: exact equality,
    // not just 1e-12 closeness.
    EXPECT_EQ(xs[i], xd[i]) << "component " << i;
  }
  // Banded fast path: tridiagonal factors stay tridiagonal (plus pivot
  // spill into the first superdiagonals), far below n^2.
  EXPECT_LT(sparse.factor_nnz(), n * n / 2);
  EXPECT_EQ(std::string(sparse.kind()), "sparse_lu");
}

TEST(SparseLu, SingularColumnThrowsDiagnostic) {
  auto pat = std::make_shared<SparsityPattern>(SparsityPattern::from_triplets(
      3, 3, {{0, 0}, {1, 1}, {1, 2}, {2, 2}}));
  CsrMatrix a(pat);
  a.values()[pat->find(0, 0)] = 1.0;
  a.values()[pat->find(1, 1)] = 0.0;  // structurally present, numerically 0
  a.values()[pat->find(1, 2)] = 1.0;
  a.values()[pat->find(2, 2)] = 1.0;
  try {
    la::SparseLu lu(a);
    FAIL() << "expected omx::Error";
  } catch (const omx::Error& e) {
    EXPECT_NE(std::string(e.what()).find("singular at column"),
              std::string::npos)
        << e.what();
  }
}

CsrMatrix arrow_matrix(std::size_t n) {
  // Dense first row and column: the natural elimination order fills the
  // whole matrix; RCM pushes the hub to the end, keeping fill minimal.
  std::vector<std::pair<std::size_t, std::size_t>> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.emplace_back(0, i);
    trips.emplace_back(i, 0);
    trips.emplace_back(i, i);
  }
  auto pat = std::make_shared<SparsityPattern>(
      SparsityPattern::from_triplets(n, n, std::move(trips)));
  CsrMatrix a(pat);
  const SparsityPattern& sp = a.pattern();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = sp.row_ptr[i]; k < sp.row_ptr[i + 1]; ++k) {
      const std::size_t j = sp.col_idx[k];
      a.values()[k] = (i == j) ? 8.0 + static_cast<double>(i)
                               : 1.0 / static_cast<double>(2 + i + j);
    }
  }
  return a;
}

TEST(SparseLu, PathologicalFillStaysCorrectAndRcmReducesIt) {
  const std::size_t n = 16;
  CsrMatrix a = arrow_matrix(n);
  la::SparseLu natural(a, la::SparseLu::Ordering::kNatural);
  la::SparseLu rcm(a, la::SparseLu::Ordering::kRcm);
  la::LuFactors dense(a.to_dense());

  std::vector<double> b(n), xn(n), xr(n), xd(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = 0.5 + 0.125 * static_cast<double>(i % 7);
  }
  natural.solve(b, xn);
  rcm.solve(b, xr);
  dense.solve(b, xd);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(xn[i], xd[i]) << "natural component " << i;
    // RCM reorders the arithmetic, so identity is only up to rounding.
    EXPECT_NEAR(xr[i], xd[i], 1e-12 * (1.0 + std::fabs(xd[i])))
        << "rcm component " << i;
  }
  // Natural elimination of the hub-first arrow fills everything; RCM
  // eliminates the spokes first and stays near the original nnz.
  EXPECT_EQ(natural.factor_nnz(), n * n);
  EXPECT_LT(rcm.factor_nnz(), a.pattern().nnz() + n);
}

// -- dense vs sparse BDF trajectories ----------------------------------------

TEST(StiffPath, DenseAndSparseBackendsBitwiseIdentical) {
  pipeline::CompiledModel cm = pipeline::compile_model(heat_builder(24));
  ode::SolverOptions opts;
  opts.tol.rtol = 1e-7;
  opts.tol.atol = 1e-10;

  ode::Solution dense_sol;
  {
    ScopedEnv disable("OMX_SPARSE_DISABLE", "1");
    ode::Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 0.25);
    dense_sol = ode::solve(p, ode::Method::kBdf, opts);
  }
  ode::Solution sparse_sol;
  {
    ScopedEnv force("OMX_SPARSE_FORCE", "1");
    ode::Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 0.25);
    sparse_sol = ode::solve(p, ode::Method::kBdf, opts);
  }

  ASSERT_EQ(dense_sol.size(), sparse_sol.size());
  EXPECT_EQ(dense_sol.stats.steps, sparse_sol.stats.steps);
  EXPECT_EQ(dense_sol.stats.rhs_calls, sparse_sol.stats.rhs_calls);
  EXPECT_EQ(dense_sol.stats.newton_iters, sparse_sol.stats.newton_iters);
  for (std::size_t s = 0; s < dense_sol.size(); ++s) {
    ASSERT_EQ(dense_sol.time(s), sparse_sol.time(s)) << "step " << s;
    std::span<const double> yd = dense_sol.state(s);
    std::span<const double> ys = sparse_sol.state(s);
    for (std::size_t i = 0; i < yd.size(); ++i) {
      ASSERT_EQ(yd[i], ys[i]) << "step " << s << " component " << i;
    }
  }
}

TEST(StiffPath, ColoredFdCutsRhsCalls) {
  // n = 40 tridiagonal: a dense FD Jacobian costs 41 RHS calls per
  // evaluation, the colored one costs 4. The total over a solve must
  // reflect that.
  pipeline::CompiledModel cm = pipeline::compile_model(heat_builder(40));
  ode::SolverOptions opts;
  opts.tol.rtol = 1e-6;
  opts.tol.atol = 1e-9;

  ode::Problem with_pattern = cm.make_problem(exec::Backend::kReference,
                                              0.0, 0.2);
  ode::Solution colored = ode::solve(with_pattern, ode::Method::kBdf, opts);

  ode::Problem no_pattern = cm.make_problem(exec::Backend::kReference,
                                            0.0, 0.2);
  no_pattern.sparsity.reset();  // legacy dense path
  ode::Solution legacy = ode::solve(no_pattern, ode::Method::kBdf, opts);

  EXPECT_EQ(colored.stats.steps, legacy.stats.steps);
  EXPECT_EQ(colored.stats.jac_calls, legacy.stats.jac_calls);
  // Each Jacobian evaluation: 4 extra RHS calls instead of 41.
  EXPECT_LT(colored.stats.rhs_calls,
            legacy.stats.rhs_calls -
                30 * std::max<std::uint64_t>(colored.stats.jac_calls, 1));
}

// -- reuse policy ------------------------------------------------------------

TEST(ReusePolicy, RefactorsWithoutReevaluatingOnStepChanges) {
  // Linear RHS (no libm): step counts and Newton behaviour are exactly
  // reproducible across platforms.
  pipeline::CompiledModel cm = pipeline::compile_model(heat_builder(16));
  ode::Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 0.5);
  ode::SolverOptions opts;
  opts.tol.rtol = 1e-6;
  opts.tol.atol = 1e-9;
  ode::Solution sol = ode::solve(p, ode::Method::kBdf, opts);

  // The controller changes h (and thus beta*h) far more often than the
  // Jacobian goes stale; most factorizations must be reuse hits. For a
  // linear system the Jacobian never changes, so age is the only
  // refresh trigger.
  EXPECT_GT(sol.stats.jac_factorizations, sol.stats.jac_calls);
  EXPECT_GT(sol.stats.jac_reuse_hits, 0u);
  EXPECT_EQ(sol.stats.jac_factorizations,
            sol.stats.jac_calls + sol.stats.jac_reuse_hits);
  // Age-based refresh: at most ceil(steps / max_age) + rejection-driven
  // evaluations; with the LSODA default of 20 the count stays small.
  EXPECT_LE(sol.stats.jac_calls,
            sol.stats.steps / 20 + sol.stats.rejected + 2);
}

TEST(ReusePolicy, FixedStepLinearProblemPinsCounts) {
  // Fixed h, linear RHS: every quantity is deterministic. 50 steps at
  // max_age 20 -> exactly 3 Jacobian evaluations (steps 0, 20, 40). The
  // order ramp BDF1 -> BDF2 changes beta once, forcing one refactor with
  // the still-fresh Jacobian — the prototypical reuse hit.
  pipeline::CompiledModel cm = pipeline::compile_model(heat_builder(8));
  ode::Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 0.5);
  ode::SolverOptions opts;
  opts.bdf_fixed_h = 0.01;
  opts.bdf_max_order = 2;
  ode::Solution sol = ode::solve(p, ode::Method::kBdf, opts);

  EXPECT_EQ(sol.stats.steps, 50u);
  EXPECT_EQ(sol.stats.rejected, 0u);
  EXPECT_EQ(sol.stats.jac_calls, 3u);
  EXPECT_EQ(sol.stats.jac_factorizations, 4u);
  EXPECT_EQ(sol.stats.jac_reuse_hits, 1u);
}

}  // namespace
}  // namespace omx
