// The 1-D heat equation model (PDE method-of-lines extension, §6 future
// work): structure, semidiscrete exactness, stiffness behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "omx/analysis/partition.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/ode/auto_switch.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace omx::models {
namespace {

pipeline::CompiledModel compile_heat(const Heat1dConfig& cfg,
                                     bool jacobian = false) {
  pipeline::CompileOptions copts;
  copts.build_jacobian = jacobian;
  return pipeline::compile_model(
      [&](expr::Context& ctx) { return build_heat1d(ctx, cfg); }, copts);
}

TEST(Heat1d, StructureIsOneBigScc) {
  Heat1dConfig cfg;
  cfg.n_cells = 12;
  pipeline::CompiledModel cm = compile_heat(cfg);
  EXPECT_EQ(cm.n(), 12u);
  // The bidirectional neighbor chain makes one SCC: like the bearing,
  // only equation-level parallelism is available.
  EXPECT_EQ(cm.partition.num_subsystems(), 1u);
}

TEST(Heat1d, JacobianIsTridiagonal) {
  Heat1dConfig cfg;
  cfg.n_cells = 10;
  pipeline::CompiledModel cm = compile_heat(cfg);
  const auto mask =
      analysis::jacobian_sparsity(cm.deps, cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    for (std::size_t j = 0; j < cm.n(); ++j) {
      const bool banded = (i == j) || (i + 1 == j) || (j + 1 == i);
      EXPECT_EQ(mask[i][j], banded) << i << "," << j;
    }
  }
}

TEST(Heat1d, MatchesSemidiscreteExactSolution) {
  Heat1dConfig cfg;
  cfg.n_cells = 16;
  pipeline::CompiledModel cm = compile_heat(cfg);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.05);
  ode::SolverOptions o;
  o.tol.rtol = 1e-10;
  o.tol.atol = 1e-12;
  const ode::Solution s = ode::solve(p, ode::Method::kDopri5, o);
  for (int i = 1; i <= cfg.n_cells; ++i) {
    // state order follows node order.
    EXPECT_NEAR(s.final_state()[static_cast<std::size_t>(i - 1)],
                heat1d_semidiscrete_exact(cfg, i, 0.05), 1e-8)
        << "node " << i;
  }
}

TEST(Heat1d, ConvergesToContinuousSolution) {
  // Refining the grid converges the semidiscrete solution to the PDE's.
  const double t = 0.02;
  double prev_err = 1e9;
  for (int cells : {8, 16, 32}) {
    Heat1dConfig cfg;
    cfg.n_cells = cells;
    const double dx = 1.0 / (cells + 1);
    // Mid-domain node closest to x = 0.5.
    const int node = (cells + 1) / 2;
    const double exact = heat1d_exact(cfg, node * dx, t);
    const double semi = heat1d_semidiscrete_exact(cfg, node, t);
    const double err = std::fabs(semi - exact);
    EXPECT_LT(err, prev_err) << cells;
    prev_err = err;
  }
}

TEST(Heat1d, StiffnessGrowsWithResolution_BdfWins) {
  // dx -> 0 makes the system stiff (|lambda_max| ~ 4 alpha/dx^2). BDF at
  // large steps stays stable where the step count of an explicit method
  // explodes.
  Heat1dConfig cfg;
  cfg.n_cells = 60;
  pipeline::CompiledModel cm = compile_heat(cfg, /*jacobian=*/true);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.5);
  cm.bind_symbolic_jacobian(p);

  ode::SolverOptions o;
  o.bdf_max_order = 2;
  o.tol.rtol = 1e-6;
  o.tol.atol = 1e-9;
  o.record_every = 1u << 30;
  const ode::Solution sb = ode::solve(p, ode::Method::kBdf, o);
  const ode::Solution se = ode::solve(p, ode::Method::kDopri5, o);

  // Both arrive near the decayed solution...
  EXPECT_NEAR(sb.final_state()[29], heat1d_semidiscrete_exact(cfg, 30, 0.5),
              1e-3);
  // ...but the explicit solver needs far more steps (stability limit
  // h < ~2/|lambda_max| = dx^2/(2 alpha)).
  EXPECT_GT(se.stats.steps, 3 * sb.stats.steps);
}

TEST(Heat1d, LsodaLikeDetectsStiffness) {
  Heat1dConfig cfg;
  cfg.n_cells = 40;
  pipeline::CompiledModel cm = compile_heat(cfg);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.5);
  ode::AutoSwitchOptions o;
  o.tol.rtol = 1e-6;
  o.record_every = 1u << 30;
  const ode::AutoSwitchResult r = ode::auto_switch(p, o);
  ASSERT_FALSE(r.switches.empty());
  EXPECT_EQ(r.switches.front().to, ode::SwitchMethod::kBdf);
}

TEST(Heat1d, EnergyDecaysMonotonically) {
  Heat1dConfig cfg;
  cfg.n_cells = 16;
  pipeline::CompiledModel cm = compile_heat(cfg);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.1);
  ode::SolverOptions o;
  o.tol.rtol = 1e-9;
  const ode::Solution s = ode::solve(p, ode::Method::kDopri5, o);
  double prev = 1e300;
  for (std::size_t k = 0; k < s.size(); ++k) {
    double energy = 0.0;
    for (double u : s.state(k)) {
      energy += u * u;
    }
    EXPECT_LE(energy, prev * (1.0 + 1e-12));
    prev = energy;
  }
}

TEST(Heat1d, HigherModesDecayFaster) {
  const double t = 0.01;
  Heat1dConfig m1;
  m1.mode = 1;
  Heat1dConfig m3;
  m3.mode = 3;
  m1.n_cells = m3.n_cells = 20;
  const double a1 = std::fabs(heat1d_semidiscrete_exact(m1, 10, t));
  const double a3 = std::fabs(heat1d_semidiscrete_exact(m3, 10, t));
  // mode-3 amplitude decays ~ exp(-9 pi^2 t) vs exp(-pi^2 t).
  EXPECT_LT(a3, a1);
}

TEST(Heat1d, RejectsDegenerateGrid) {
  expr::Context ctx;
  Heat1dConfig cfg;
  cfg.n_cells = 1;
  EXPECT_THROW(build_heat1d(ctx, cfg), omx::Bug);
}

}  // namespace
}  // namespace omx::models
