#include <gtest/gtest.h>

#include <algorithm>

#include "omx/graph/dot.hpp"
#include "omx/graph/scc.hpp"
#include "omx/support/diagnostics.hpp"
#include "omx/support/rng.hpp"

namespace omx::graph {
namespace {

TEST(Digraph, BasicConstruction) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Digraph, DeduplicateRemovesParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.deduplicate();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Digraph, ReversedSwapsDirections) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(2, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_EQ(r.num_edges(), 2u);
}

TEST(Digraph, TopologicalOrderRespectsEdges) {
  Digraph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto order = g.topological_order();
  std::vector<std::size_t> pos(5);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = i;
  }
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_LT(pos[3], pos[4]);
}

TEST(Digraph, TopologicalOrderThrowsOnCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(g.topological_order(), omx::Error);
}

TEST(Digraph, LevelsAreLongestPaths) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 3);  // short path must not shrink the level
  g.add_edge(2, 3);
  const auto levels = g.levels();
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 0u);
  EXPECT_EQ(levels[3], 2u);
}

TEST(Scc, SingleCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components(), 1u);
  EXPECT_EQ(scc.members[0].size(), 3u);
}

TEST(Scc, ChainIsAllTrivial) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components(), 4u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(scc.is_trivial(c, g));
  }
}

TEST(Scc, SelfLoopIsNontrivial) {
  Digraph g(2);
  g.add_edge(0, 0);
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components(), 2u);
  EXPECT_FALSE(scc.is_trivial(scc.component[0], g));
  EXPECT_TRUE(scc.is_trivial(scc.component[1], g));
}

TEST(Scc, TwoComponentsWithBridge) {
  // {0,1} -> {2,3}
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 2);
  const SccResult scc = strongly_connected_components(g);
  ASSERT_EQ(scc.num_components(), 2u);
  // Tarjan numbering: consumer component has the lower index.
  EXPECT_LT(scc.component[2], scc.component[0]);
  const Digraph c = condensation(g, scc);
  EXPECT_EQ(c.num_nodes(), 2u);
  EXPECT_EQ(c.num_edges(), 1u);
  EXPECT_TRUE(c.has_edge(scc.component[0], scc.component[2]));
}

TEST(Scc, CondensationDropsInternalEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const SccResult scc = strongly_connected_components(g);
  const Digraph c = condensation(g, scc);
  EXPECT_EQ(c.num_nodes(), 2u);
  EXPECT_EQ(c.num_edges(), 1u);  // deduplicated bridge
}

// -- property: SCC membership is an equivalence consistent with
// reachability on random graphs -------------------------------------------
class SccProperty : public ::testing::TestWithParam<int> {};

namespace {
std::vector<bool> reachable_from(const Digraph& g, NodeId src) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> stack{src};
  seen[src] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : g.successors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return seen;
}
}  // namespace

TEST_P(SccProperty, ComponentsMatchMutualReachability) {
  omx::SplitMix64 rng(77 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 12;
  Digraph g(n);
  const std::size_t edges = 4 + rng.below(24);
  for (std::size_t e = 0; e < edges; ++e) {
    g.add_edge(static_cast<NodeId>(rng.below(n)),
               static_cast<NodeId>(rng.below(n)));
  }
  const SccResult scc = strongly_connected_components(g);

  // Mutual reachability <=> same component.
  std::vector<std::vector<bool>> reach(n);
  for (NodeId u = 0; u < n; ++u) {
    reach[u] = reachable_from(g, u);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      const bool mutual = reach[u][v] && reach[v][u];
      EXPECT_EQ(mutual, scc.component[u] == scc.component[v])
          << "nodes " << u << "," << v;
    }
  }
  // Condensation is acyclic.
  EXPECT_NO_THROW(condensation(g, scc).topological_order());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccProperty, ::testing::Range(0, 30));

TEST(Dot, PlainAndClusteredExport) {
  Digraph g(2);
  g.add_edge(0, 1);
  const std::vector<std::string> labels{"a", "b"};
  const std::string plain = to_dot(g, labels);
  EXPECT_NE(plain.find("\"a\" -> \"b\""), std::string::npos);
  const SccResult scc = strongly_connected_components(g);
  const std::string clustered = to_dot_clustered(g, scc, labels);
  EXPECT_NE(clustered.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(clustered.find("(x 1)"), std::string::npos);
}

TEST(Dot, LabelCountMismatchIsABug) {
  Digraph g(2);
  EXPECT_THROW(to_dot(g, {"only-one"}), omx::Bug);
}

}  // namespace
}  // namespace omx::graph
