// Hybrid-model ensemble suite: event-carrying scenarios through
// solve_ensemble must reproduce the sequential per-scenario solves
// bitwise, stay deterministic across worker counts and batch widths,
// retire lanes independently at terminal events, and keep the lane
// accounting metrics distinct. The *Stress suites run under TSan via
// scripts/ci.sh (the Event|Hybrid filter) with event-desynchronized
// lanes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "omx/models/coupled_osc.hpp"
#include "omx/models/hybrid.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/ensemble.hpp"

namespace omx::ode {
namespace {

/// 64 drop heights — every lane bounces on its own schedule, so batches
/// desynchronize immediately.
EnsembleSpec ball_spec(std::size_t count, std::size_t workers,
                       std::size_t max_batch) {
  EnsembleSpec spec;
  spec.workers = workers;
  spec.max_batch = max_batch;
  for (std::size_t i = 0; i < count; ++i) {
    spec.initial_states.push_back(
        {0.5 + 0.03 * static_cast<double>(i), 0.0});
  }
  return spec;
}

bool bitwise_equal(const Solution& a, const Solution& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ta = a.time(i);
    const double tb = b.time(i);
    if (std::memcmp(&ta, &tb, sizeof(double)) != 0) {
      return false;
    }
    const std::span<const double> ya = a.state(i);
    const std::span<const double> yb = b.state(i);
    if (std::memcmp(ya.data(), yb.data(), ya.size_bytes()) != 0) {
      return false;
    }
  }
  return true;
}

void expect_ensemble_matches_sequential(Method method, double dt = 1e-3) {
  const models::BouncingBall cfg;
  const Problem base = models::bouncing_ball_problem(cfg, 1.8);
  const EnsembleSpec spec = ball_spec(64, 4, 16);
  SolverOptions o;
  o.dt = dt;
  const EnsembleResult r = solve_ensemble(base, method, o, spec);
  ASSERT_EQ(r.solutions.size(), spec.initial_states.size());
  for (std::size_t i = 0; i < spec.initial_states.size(); ++i) {
    Problem p = base;
    p.y0 = spec.initial_states[i];
    const Solution want = solve(p, method, o);
    EXPECT_TRUE(bitwise_equal(r.solutions[i], want))
        << to_string(method) << " scenario " << i;
    EXPECT_GT(r.solutions[i].stats.events, 0u) << "scenario " << i;
  }
}

TEST(HybridEnsemble, Dopri5BitwiseMatchesSequentialSolves) {
  expect_ensemble_matches_sequential(Method::kDopri5);
}

TEST(HybridEnsemble, FixedStepFallbackBitwiseMatchesSequentialSolves) {
  // Events break the lockstep assumption of the batched fixed-step
  // drivers; with events attached they take the scenario-at-a-time path,
  // which must still reproduce plain solve bitwise.
  expect_ensemble_matches_sequential(Method::kRk4, 2e-3);
  expect_ensemble_matches_sequential(Method::kExplicitEuler, 2e-3);
}

TEST(HybridEnsemble, StiffMethodsMatchSequentialSolves) {
  const models::SwitchingChemistry cfg;
  const double ts = models::switching_chemistry_switch_time(cfg);
  const Problem base = models::switching_chemistry_problem(cfg, ts + 0.3);
  EnsembleSpec spec;
  spec.workers = 4;
  spec.max_batch = 8;
  for (std::size_t i = 0; i < 16; ++i) {
    spec.initial_states.push_back(
        {cfg.y0 + 0.01 * static_cast<double>(i), cfg.k_slow});
  }
  SolverOptions o;
  o.tol = {1e-8, 1e-10};
  const EnsembleResult r = solve_ensemble(base, Method::kBdf, o, spec);
  for (std::size_t i = 0; i < spec.initial_states.size(); ++i) {
    Problem p = base;
    p.y0 = spec.initial_states[i];
    const Solution want = solve(p, Method::kBdf, o);
    EXPECT_TRUE(bitwise_equal(r.solutions[i], want)) << "scenario " << i;
    EXPECT_EQ(r.solutions[i].stats.events, 1u) << "scenario " << i;
  }
}

TEST(HybridEnsemble, DeterministicAcrossWorkersAndBatchWidths) {
  const models::BouncingBall cfg;
  const Problem base = models::bouncing_ball_problem(cfg, 1.8);
  SolverOptions o;
  const EnsembleResult ref =
      solve_ensemble(base, Method::kDopri5, o, ball_spec(64, 1, 1));
  const std::size_t workers[] = {2, 4, 8};
  const std::size_t widths[] = {4, 16, 64};
  for (std::size_t c = 0; c < 3; ++c) {
    const EnsembleResult got = solve_ensemble(
        base, Method::kDopri5, o, ball_spec(64, workers[c], widths[c]));
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(bitwise_equal(got.solutions[i], ref.solutions[i]))
          << workers[c] << " workers, batch " << widths[c] << ", scenario "
          << i;
    }
  }
}

TEST(HybridEnsemble, TerminalEventsRetireLanesIndependently) {
  obs::set_enabled(true);
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t retired0 =
      reg.counter("ensemble.lanes_retired").value();
  const std::uint64_t stopped0 =
      reg.counter("ensemble.lanes_event_stopped").value();
  const std::uint64_t cancelled0 =
      reg.counter("ensemble.lanes_cancelled").value();

  const models::BouncingBall cfg;
  const Problem base =
      models::bouncing_ball_problem(cfg, 5.0, /*terminal=*/true);
  const EnsembleSpec spec = ball_spec(32, 4, 8);
  const EnsembleResult r =
      solve_ensemble(base, Method::kDopri5, {}, spec);
  for (std::size_t i = 0; i < 32; ++i) {
    const double h0 = spec.initial_states[i][0];
    EXPECT_NEAR(r.solutions[i].final_time(),
                std::sqrt(2.0 * h0 / cfg.g), 1e-6)
        << "scenario " << i;
    EXPECT_EQ(r.solutions[i].stats.events_terminal, 1u);
  }
  // Every lane retired, all of them at an event; none were cancelled —
  // the three counters stay distinct (no aliasing).
  EXPECT_EQ(reg.counter("ensemble.lanes_retired").value() - retired0, 32u);
  EXPECT_EQ(reg.counter("ensemble.lanes_event_stopped").value() - stopped0,
            32u);
  EXPECT_EQ(reg.counter("ensemble.lanes_cancelled").value() - cancelled0,
            0u);
}

TEST(HybridEnsemble, NonTerminalRunsRetireWithoutEventStops) {
  obs::set_enabled(true);
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t retired0 =
      reg.counter("ensemble.lanes_retired").value();
  const std::uint64_t stopped0 =
      reg.counter("ensemble.lanes_event_stopped").value();

  const models::BouncingBall cfg;
  const Problem base = models::bouncing_ball_problem(cfg, 1.0);
  solve_ensemble(base, Method::kDopri5, {}, ball_spec(8, 2, 4));
  EXPECT_EQ(reg.counter("ensemble.lanes_retired").value() - retired0, 8u);
  EXPECT_EQ(reg.counter("ensemble.lanes_event_stopped").value() - stopped0,
            0u);
}

TEST(HybridEnsembleStress, EventDesynchronizedLanesUnderContention) {
  // Kuramoto ring with a terminal synchronization event: perturbed
  // initial phases lock at different times, so lanes retire out of
  // order while workers steal and repack batches — the TSan target.
  models::CoupledOscillators cfg;
  cfg.sync_threshold = 0.95;
  const Problem base = models::coupled_osc_problem(cfg, 30.0);
  EnsembleSpec spec;
  spec.workers = 8;
  spec.max_batch = 8;
  for (std::size_t i = 0; i < 48; ++i) {
    std::vector<double> y0 = base.y0;
    for (std::size_t j = 0; j < y0.size(); ++j) {
      y0[j] += 0.02 * static_cast<double>((i * 7 + j * 3) % 11);
    }
    spec.initial_states.push_back(std::move(y0));
  }
  SolverOptions o;
  o.tol = {1e-7, 1e-9};
  const EnsembleResult r = solve_ensemble(base, Method::kDopri5, o, spec);

  std::size_t stopped_early = 0;
  for (const Solution& s : r.solutions) {
    ASSERT_GT(s.size(), 0u);
    if (s.stats.events_terminal > 0) {
      ++stopped_early;
      EXPECT_LT(s.final_time(), 30.0);
      EXPECT_GE(models::kuramoto_order(s.final_state()),
                cfg.sync_threshold - 1e-6);
    }
  }
  // Strong ring coupling locks the network well before tend.
  EXPECT_GT(stopped_early, 0u);

  // Determinism holds under contention too.
  const EnsembleResult again =
      solve_ensemble(base, Method::kDopri5, o, spec);
  for (std::size_t i = 0; i < r.solutions.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(r.solutions[i], again.solutions[i]))
        << "scenario " << i;
  }
}

}  // namespace
}  // namespace omx::ode
