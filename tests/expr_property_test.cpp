// Property-based suites over randomly generated expressions:
//  * simplify() preserves value at random evaluation points,
//  * differentiate() matches central finite differences,
//  * substitution composed with evaluation commutes.
#include <gtest/gtest.h>

#include <cmath>

#include "omx/expr/context.hpp"
#include "omx/expr/derivative.hpp"
#include "omx/expr/eval.hpp"
#include "omx/expr/simplify.hpp"
#include "omx/support/rng.hpp"

namespace omx::expr {
namespace {

/// Random expression generator over symbols {x, y, z} using only
/// operations that are smooth and finite on the sampled domain.
class RandomExprGen {
 public:
  RandomExprGen(Context& ctx, SplitMix64& rng, bool smooth_only)
      : ctx_(ctx), rng_(rng), smooth_only_(smooth_only) {}

  ExprId gen(int depth) {
    if (depth <= 0 || rng_.below(5) == 0) {
      return leaf();
    }
    switch (rng_.below(smooth_only_ ? 8 : 10)) {
      case 0: return ctx_.pool.add(gen(depth - 1), gen(depth - 1));
      case 1: return ctx_.pool.sub(gen(depth - 1), gen(depth - 1));
      case 2: return ctx_.pool.mul(gen(depth - 1), gen(depth - 1));
      case 3: {
        // Guarded division: denominator g^2 + 4 is bounded away from zero.
        const ExprId g = gen(depth - 1);
        const ExprId denom =
            ctx_.pool.add(ctx_.pool.mul(g, g), ctx_.pool.constant(4.0));
        return ctx_.pool.div(gen(depth - 1), denom);
      }
      case 4: return ctx_.pool.neg(gen(depth - 1));
      case 5: return ctx_.pool.call(Func1::kSin, gen(depth - 1));
      case 6: return ctx_.pool.call(Func1::kCos, gen(depth - 1));
      case 7: return ctx_.pool.call(Func1::kTanh, gen(depth - 1));
      case 8:
        return ctx_.pool.call(Func2::kMin, gen(depth - 1), gen(depth - 1));
      case 9:
        return ctx_.pool.call(Func2::kMax, gen(depth - 1), gen(depth - 1));
    }
    return leaf();
  }

 private:
  ExprId leaf() {
    switch (rng_.below(4)) {
      case 0: return ctx_.pool.constant(std::floor(rng_.uniform(-4, 5)));
      case 1: return ctx_.pool.sym(ctx_.symbol("x"));
      case 2: return ctx_.pool.sym(ctx_.symbol("y"));
      default: return ctx_.pool.sym(ctx_.symbol("z"));
    }
  }

  Context& ctx_;
  SplitMix64& rng_;
  bool smooth_only_;
};

class SimplifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyProperty, PreservesValueAtRandomPoints) {
  Context ctx;
  SplitMix64 rng(1000 + static_cast<std::uint64_t>(GetParam()));
  RandomExprGen gen(ctx, rng, /*smooth_only=*/false);
  const ExprId e = gen.gen(5);
  const ExprId s = simplify(ctx.pool, e);

  for (int pt = 0; pt < 20; ++pt) {
    Env env;
    env.set(ctx.symbol("x"), rng.uniform(-2.0, 2.0));
    env.set(ctx.symbol("y"), rng.uniform(-2.0, 2.0));
    env.set(ctx.symbol("z"), rng.uniform(-2.0, 2.0));
    const double ve = eval(ctx.pool, e, env);
    const double vs = eval(ctx.pool, s, env);
    if (std::isfinite(ve)) {
      EXPECT_NEAR(vs, ve, 1e-9 * std::max(1.0, std::fabs(ve)))
          << "seed " << GetParam() << " point " << pt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty, ::testing::Range(0, 40));

class DerivativeProperty : public ::testing::TestWithParam<int> {};

TEST_P(DerivativeProperty, MatchesCentralFiniteDifference) {
  Context ctx;
  SplitMix64 rng(5000 + static_cast<std::uint64_t>(GetParam()));
  RandomExprGen gen(ctx, rng, /*smooth_only=*/true);
  const ExprId e = gen.gen(4);
  const ExprId d = differentiate(ctx.pool, e, ctx.symbol("x"));

  int checked = 0;
  for (int pt = 0; pt < 10 && checked < 5; ++pt) {
    const double x = rng.uniform(-1.5, 1.5);
    const double y = rng.uniform(-1.5, 1.5);
    const double z = rng.uniform(-1.5, 1.5);
    const double h = 1e-6;
    Env env;
    env.set(ctx.symbol("y"), y);
    env.set(ctx.symbol("z"), z);
    env.set(ctx.symbol("x"), x + h);
    const double fp = eval(ctx.pool, e, env);
    env.set(ctx.symbol("x"), x - h);
    const double fm = eval(ctx.pool, e, env);
    env.set(ctx.symbol("x"), x);
    const double analytic = eval(ctx.pool, d, env);
    const double numeric = (fp - fm) / (2.0 * h);
    if (!std::isfinite(analytic) || !std::isfinite(numeric) ||
        std::fabs(numeric) > 1e4) {
      continue;  // skip ill-conditioned sample
    }
    EXPECT_NEAR(analytic, numeric,
                1e-4 * std::max(1.0, std::fabs(numeric)))
        << "seed " << GetParam() << " at x=" << x;
    ++checked;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivativeProperty, ::testing::Range(0, 40));

class SubstituteProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubstituteProperty, SubstitutionCommutesWithEvaluation) {
  Context ctx;
  SplitMix64 rng(9000 + static_cast<std::uint64_t>(GetParam()));
  RandomExprGen gen(ctx, rng, /*smooth_only=*/false);
  const ExprId e = gen.gen(4);
  // substitute x := repl(y, z); repl must not itself contain x, or the
  // commutation property would compare different bindings of x.
  const ExprId repl = ctx.pool.substitute(
      gen.gen(3), ctx.symbol("x"), ctx.pool.sym(ctx.symbol("y")));

  const ExprId substituted =
      ctx.pool.substitute(e, ctx.symbol("x"), repl);

  for (int pt = 0; pt < 10; ++pt) {
    Env env;
    env.set(ctx.symbol("y"), rng.uniform(-2.0, 2.0));
    env.set(ctx.symbol("z"), rng.uniform(-2.0, 2.0));
    const double xv = eval(ctx.pool, repl, env);
    const double direct = eval(ctx.pool, substituted, env);
    env.set(ctx.symbol("x"), xv);
    const double indirect = eval(ctx.pool, e, env);
    if (std::isfinite(direct) && std::isfinite(indirect)) {
      EXPECT_NEAR(direct, indirect,
                  1e-9 * std::max(1.0, std::fabs(indirect)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubstituteProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace omx::expr
