#include <gtest/gtest.h>

#include "omx/expr/eval.hpp"
#include "omx/parser/lexer.hpp"
#include "omx/parser/parser.hpp"
#include "omx/parser/unparse.hpp"

namespace omx::parser {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenizesPunctuationAndKeywords) {
  const auto toks = tokenize("model class var == = .. . ; :");
  ASSERT_EQ(toks.size(), 10u);  // incl. EOF
  EXPECT_EQ(toks[0].kind, TokKind::kKwModel);
  EXPECT_EQ(toks[1].kind, TokKind::kKwClass);
  EXPECT_EQ(toks[2].kind, TokKind::kKwVar);
  EXPECT_EQ(toks[3].kind, TokKind::kEqualEqual);
  EXPECT_EQ(toks[4].kind, TokKind::kEqual);
  EXPECT_EQ(toks[5].kind, TokKind::kDotDot);
  EXPECT_EQ(toks[6].kind, TokKind::kDot);
  EXPECT_EQ(toks[7].kind, TokKind::kSemicolon);
  EXPECT_EQ(toks[8].kind, TokKind::kColon);
  EXPECT_EQ(toks[9].kind, TokKind::kEof);
}

TEST(Lexer, NumbersIncludingExponents) {
  const auto toks = tokenize("1 2.5 1e3 2.5e-2 7E+1");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_DOUBLE_EQ(toks[0].number, 1.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 2.5);
  EXPECT_DOUBLE_EQ(toks[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].number, 0.025);
  EXPECT_DOUBLE_EQ(toks[4].number, 70.0);
}

TEST(Lexer, RangeDoesNotEatDots) {
  // "1..10" must lex as NUMBER DOTDOT NUMBER, not a malformed float.
  const auto toks = tokenize("w[1..10]");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[1].kind, TokKind::kLBracket);
  EXPECT_DOUBLE_EQ(toks[2].number, 1.0);
  EXPECT_EQ(toks[3].kind, TokKind::kDotDot);
  EXPECT_DOUBLE_EQ(toks[4].number, 10.0);
}

TEST(Lexer, LineAndBlockComments) {
  const auto toks = tokenize(
      "a // rest of line\n b (* block (* nested *) still *) c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(tokenize("x (* never closed"), omx::Error);
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(tokenize("a ? b"), omx::Error);
}

TEST(Lexer, TracksLocations) {
  const auto toks = tokenize("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

// ---------------------------------------------------------------------------
// Expression parsing
// ---------------------------------------------------------------------------

class ExprParse : public ::testing::Test {
 protected:
  expr::Context ctx;

  double eval_expr(const std::string& src,
                   std::initializer_list<std::pair<const char*, double>>
                       binds = {}) {
    const expr::ExprId e = parse_expression(src, ctx);
    expr::Env env;
    for (const auto& [n, v] : binds) {
      env.set(ctx.symbol(n), v);
    }
    return expr::eval(ctx.pool, e, env);
  }
};

TEST_F(ExprParse, Precedence) {
  EXPECT_DOUBLE_EQ(eval_expr("2 + 3 * 4"), 14.0);
  EXPECT_DOUBLE_EQ(eval_expr("(2 + 3) * 4"), 20.0);
  EXPECT_DOUBLE_EQ(eval_expr("2 - 3 - 4"), -5.0);  // left assoc
  EXPECT_DOUBLE_EQ(eval_expr("12 / 3 / 2"), 2.0);
  EXPECT_DOUBLE_EQ(eval_expr("2 ^ 3 ^ 2"), 512.0);  // right assoc
  EXPECT_DOUBLE_EQ(eval_expr("-2 ^ 2"), -4.0);  // -(2^2): ^ binds tighter
  EXPECT_DOUBLE_EQ(eval_expr("2 * -3"), -6.0);
}

TEST_F(ExprParse, FunctionCalls) {
  EXPECT_NEAR(eval_expr("sin(0)"), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(eval_expr("max(2, 3) + min(2, 3)"), 5.0);
  EXPECT_DOUBLE_EQ(eval_expr("pow(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(eval_expr("hypot(3, 4)"), 5.0);
}

TEST_F(ExprParse, WrongArityThrows) {
  EXPECT_THROW(parse_expression("sin(1, 2)", ctx), omx::Error);
  EXPECT_THROW(parse_expression("max(1)", ctx), omx::Error);
  EXPECT_THROW(parse_expression("nosuchfn(1)", ctx), omx::Error);
}

TEST_F(ExprParse, QualifiedNames) {
  const expr::ExprId e = parse_expression("dam.level + w[3].x", ctx);
  std::vector<SymbolId> syms;
  ctx.pool.free_syms(e, syms);
  ASSERT_EQ(syms.size(), 2u);
  EXPECT_NE(ctx.names.find("dam.level"), kInvalidSymbol);
  EXPECT_NE(ctx.names.find("w[3].x"), kInvalidSymbol);
}

TEST_F(ExprParse, Variables) {
  EXPECT_DOUBLE_EQ(eval_expr("a * b + time", {{"a", 2.0},
                                              {"b", 3.0},
                                              {"time", 4.0}}),
                   10.0);
}

TEST_F(ExprParse, SyntaxErrorsCarryLocations) {
  try {
    parse_expression("2 +\n* 3", ctx);
    FAIL() << "expected parse error";
  } catch (const omx::Error& e) {
    EXPECT_EQ(e.where().line, 2u);
  }
}

// ---------------------------------------------------------------------------
// Model parsing
// ---------------------------------------------------------------------------

TEST(ModelParse, MinimalModel) {
  expr::Context ctx;
  const auto m = parse_model(R"(
model M
  class A
    var x start 1;
    eq der(x) == -x;
  end
  instance a : A;
end
)", ctx);
  EXPECT_EQ(m.name(), "M");
  ASSERT_EQ(m.classes().size(), 1u);
  ASSERT_EQ(m.instances().size(), 1u);
  EXPECT_EQ(m.classes()[0].variables().size(), 1u);
  EXPECT_EQ(m.classes()[0].equations().size(), 1u);
}

TEST(ModelParse, InheritanceAndFormals) {
  expr::Context ctx;
  const auto m = parse_model(R"(
model M
  class Base(k)
    var x;
    eq der(x) == -k*x;
  end
  class Derived(k2) inherits Base(2*k2)
    param extra = 1;
  end
  instance d : Derived(3);
end
)", ctx);
  const auto& d = m.find_class("Derived");
  EXPECT_EQ(d.base(), "Base");
  ASSERT_EQ(d.base_args().size(), 1u);
  ASSERT_EQ(d.formals().size(), 1u);
}

TEST(ModelParse, InstanceArraysAndParts) {
  expr::Context ctx;
  const auto m = parse_model(R"(
model M
  class P
    var v start 0;
    eq der(v) == -v;
  end
  class C
    part inner_part : P;
    var x;
    eq x == inner_part.v * 2;
  end
  instance cs[1..4] : C;
end
)", ctx);
  ASSERT_EQ(m.instances().size(), 1u);
  EXPECT_TRUE(m.instances()[0].is_array);
  EXPECT_EQ(m.instances()[0].lo, 1);
  EXPECT_EQ(m.instances()[0].hi, 4);
  EXPECT_EQ(m.find_class("C").parts().size(), 1u);
}

TEST(ModelParse, Diagnostics) {
  expr::Context ctx;
  // Missing semicolon.
  EXPECT_THROW(parse_model("model M class A var x end end", ctx),
               omx::Error);
  // Duplicate class.
  EXPECT_THROW(parse_model(R"(
model M
  class A end
  class A end
end)", ctx),
               omx::Error);
  // Non-integer array bounds.
  EXPECT_THROW(parse_model(R"(
model M
  class A end
  instance a[1..2.5] : A;
end)", ctx),
               omx::Error);
  // Junk after model end.
  EXPECT_THROW(parse_model("model M end extra", ctx), omx::Error);
}

TEST(ModelParse, EquationLhsForms) {
  expr::Context ctx;
  const auto m = parse_model(R"(
model M
  class A
    var x, a;
    eq der(x) == a;
    eq a == 2*x;
  end
  instance inst : A;
end
)", ctx);
  const auto& eqs = m.find_class("A").equations();
  ASSERT_EQ(eqs.size(), 2u);
  EXPECT_EQ(ctx.pool.node(eqs[0].lhs).op, expr::Op::kDer);
  EXPECT_EQ(ctx.pool.node(eqs[1].lhs).op, expr::Op::kSym);
}

// ---------------------------------------------------------------------------
// when clauses
// ---------------------------------------------------------------------------

TEST(ModelParse, WhenClauseDirectionsAndResets) {
  expr::Context ctx;
  const auto m = parse_model(R"(
model M
  class A
    param e = 0.8;
    var h start 1;
    var v start 0;
    eq der(h) == v;
    eq der(v) == -9.81;
    when down h then v = -e*v, h = 0;
    when up v then h = h;
    when v - 1 then v = 0;
    when cross h - 2 then v = -v;
  end
  instance ball : A;
end
)", ctx);
  const auto& whens = m.find_class("A").whens();
  ASSERT_EQ(whens.size(), 4u);
  EXPECT_EQ(whens[0].direction, -1);
  ASSERT_EQ(whens[0].resets.size(), 2u);
  EXPECT_EQ(ctx.names.name(whens[0].resets[0].first), "v");
  EXPECT_EQ(ctx.names.name(whens[0].resets[1].first), "h");
  EXPECT_EQ(whens[1].direction, 1);
  EXPECT_EQ(whens[2].direction, 0);  // bare guard defaults to cross
  EXPECT_EQ(whens[3].direction, 0);
}

TEST(ModelParse, WhenDirectionWordsStayOrdinaryIdentifiers) {
  // up/down/cross are contextual: only the leading position of a when
  // guard treats them as direction markers.
  expr::Context ctx;
  const auto m = parse_model(R"(
model M
  class A
    var up start 1;
    var down start 0;
    eq der(up) == down;
    eq der(down) == -up;
    when cross up - down then down = 0;
  end
  instance i : A;
end
)", ctx);
  const auto& c = m.find_class("A");
  ASSERT_EQ(c.variables().size(), 2u);
  ASSERT_EQ(c.whens().size(), 1u);
  EXPECT_EQ(c.whens()[0].direction, 0);
}

TEST(ModelParse, WhenClauseDiagnostics) {
  expr::Context ctx;
  // Missing then.
  EXPECT_THROW(parse_model(R"(
model M
  class A
    var x;
    eq der(x) == -x;
    when x x = 0;
  end
  instance i : A;
end)", ctx),
               omx::Error);
  // Missing reset list.
  EXPECT_THROW(parse_model(R"(
model M
  class A
    var x;
    eq der(x) == -x;
    when x then;
  end
  instance i : A;
end)", ctx),
               omx::Error);
}

TEST(ModelParse, WhenClauseRoundTripsThroughUnparse) {
  expr::Context ctx;
  const std::string src = R"(
model M
  class A
    param e = 0.8;
    var h start 1;
    var v start 0;
    eq der(h) == v;
    eq der(v) == -9.81;
    when down h then v = -e*v, h = 0;
    when up v - 1 then v = 0;
  end
  instance ball : A;
end
)";
  const auto m1 = parse_model(src, ctx);
  const std::string s1 = unparse_model(m1);
  EXPECT_NE(s1.find("when down h then v = -e * v, h = 0;"),
            std::string::npos);
  EXPECT_NE(s1.find("when up v - 1 then v = 0;"), std::string::npos);
  expr::Context ctx2;
  const auto m2 = parse_model(s1, ctx2);
  EXPECT_EQ(unparse_model(m2), s1);
  ASSERT_EQ(m2.find_class("A").whens().size(), 2u);
}

}  // namespace
}  // namespace omx::parser
