// Property tests for the event machinery: randomly generated `when`
// grammars parse, flatten, compile and solve without crashing, and on
// every recorded trajectory the solver never steps over a directional
// sign change of any guard — any crossing between consecutive accepted
// rows coincides with a recorded event pair. Seeded generators keep
// every run reproducible.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "omx/ode/events.hpp"
#include "omx/ode/solve.hpp"
#include "omx/parser/parser.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace omx::ode {
namespace {

// --------------------------------------------- random source generator

/// Random guard/reset expression over the model's two states and one
/// parameter: small depth, sin/cos heavy so guards actually cross.
std::string rand_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 3 : 6);
  std::uniform_real_distribution<double> c(-2.0, 2.0);
  switch (pick(rng)) {
    case 0: return "x";
    case 1: return "v";
    case 2: return "a";
    case 3: {
      std::ostringstream os;
      os << c(rng);
      return os.str();
    }
    case 4: return "sin(" + rand_expr(rng, depth - 1) + ")";
    case 5: return "(" + rand_expr(rng, depth - 1) + " + " +
                   rand_expr(rng, depth - 1) + ")";
    default: return "(" + rand_expr(rng, depth - 1) + " * " +
                    rand_expr(rng, depth - 1) + ")";
  }
}

/// A damped oscillator carrying `count` random when clauses. Resets only
/// touch v (bounded dynamics either way) and keep magnitudes small.
std::string rand_model_source(std::mt19937& rng, std::size_t count) {
  static const char* dirs[] = {"", "up ", "down ", "cross "};
  std::string src =
      "model M\n"
      "  class A\n"
      "    param a = 0.3;\n"
      "    var x start 1;\n"
      "    var v start 0;\n"
      "    eq der(x) == v;\n"
      "    eq der(v) == -x - a*v;\n";
  std::uniform_int_distribution<int> dir(0, 3);
  std::uniform_int_distribution<int> two(0, 1);
  for (std::size_t k = 0; k < count; ++k) {
    src += "    when " + std::string(dirs[dir(rng)]) +
           rand_expr(rng, 2) + " then v = " +
           (two(rng) ? "0.5 * v" : "v - 0.01") + ";\n";
  }
  src +=
      "  end\n"
      "  instance m : A;\n"
      "end\n";
  return src;
}

TEST(EventProperty, RandomWhenGrammarsNeverCrash) {
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<std::size_t> clauses(1, 3);
  for (int iter = 0; iter < 25; ++iter) {
    const std::string src = rand_model_source(rng, clauses(rng));
    SCOPED_TRACE(src);
    pipeline::CompiledModel cm = pipeline::compile_model(
        [&](expr::Context& ctx) {
          return parser::parse_model(src, ctx);
        });
    Problem p = cm.make_problem(exec::Backend::kReference, 0.0, 4.0);
    ASSERT_NE(p.events, nullptr);
    // Tight Zeno guard: pathological grammars must throw, not spin.
    auto spec = std::make_shared<EventSpec>(*p.events);
    spec->max_events = 200;
    p.events = spec;
    SolverOptions o;
    o.dt = 1e-2;
    for (const Method m : {Method::kDopri5, Method::kRk4}) {
      try {
        const Solution s = solve(p, m, o);
        for (double y : s.final_state()) {
          EXPECT_TRUE(std::isfinite(y)) << to_string(m);
        }
      } catch (const omx::Error&) {
        // Zeno guard or step-limit trip: an orderly refusal, not a crash.
      }
    }
  }
}

// ------------------------------------------- no-crossing-skipped check

struct RandomEvent {
  int direction;  // +1, -1, 0
  double phase;
  double level;
};

/// Sign with the event cache semantics: exact zero carries no sign.
int sgn(double g) { return g > 0.0 ? 1 : g < 0.0 ? -1 : 0; }

bool directional(int dir, int s_prev, int s_new) {
  if (s_prev == 0 || s_new == 0 || s_prev == s_new) {
    return false;
  }
  if (dir > 0) {
    return s_prev < 0;
  }
  if (dir < 0) {
    return s_prev > 0;
  }
  return true;
}

TEST(EventProperty, SolverNeverStepsOverASignChange) {
  std::mt19937 rng(987654321);
  std::uniform_real_distribution<double> phase(0.0, 6.28);
  std::uniform_real_distribution<double> level(-0.6, 0.6);
  std::uniform_int_distribution<int> dir(-1, 1);

  for (int iter = 0; iter < 20; ++iter) {
    std::vector<RandomEvent> evs;
    EventSpec spec;
    for (int k = 0; k < 3; ++k) {
      RandomEvent re{dir(rng), phase(rng), level(rng)};
      EventFunction f;
      // Guard depends on state and time; no reset (detection-only), so
      // the recorded trajectory stays smooth and checkable.
      f.guard = [re](double t, std::span<const double> y) {
        return std::sin(t + re.phase) * y[0] - re.level;
      };
      f.direction = re.direction > 0   ? EventDirection::kRising
                    : re.direction < 0 ? EventDirection::kFalling
                                       : EventDirection::kBoth;
      spec.functions.push_back(std::move(f));
      evs.push_back(re);
    }

    Problem p;
    p.n = 2;
    p.y0 = {1.0, 0.0};
    p.t0 = 0.0;
    p.tend = 6.0;
    p.set_rhs([](double, std::span<const double> y, std::span<double> f) {
      f[0] = y[1];
      f[1] = -y[0];
    });
    p.events = std::make_shared<const EventSpec>(std::move(spec));

    SolverOptions o;
    o.record_every = 1;
    const Solution s = solve(p, Method::kDopri5, o);
    ASSERT_GT(s.size(), 2u);

    // Event rows come as a pre/post pair sharing the localized time; an
    // interval is "handled" when it ends at (or inside) such a pair —
    // that is exactly where a directional sign change is supposed to
    // land. Everywhere else a directional change means the solver
    // stepped over a crossing without firing.
    std::vector<char> handled(s.size(), 0);
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s.time(i) == s.time(i - 1)) {
        handled[i] = handled[i - 1] = 1;
      }
    }
    for (std::size_t k = 0; k < evs.size(); ++k) {
      const RandomEvent& re = evs[k];
      auto guard = [&](double t, std::span<const double> y) {
        return std::sin(t + re.phase) * y[0] - re.level;
      };
      int s_prev = sgn(guard(s.time(0), s.state(0)));
      for (std::size_t i = 1; i < s.size(); ++i) {
        const int s_new = sgn(guard(s.time(i), s.state(i)));
        if (!handled[i]) {
          EXPECT_FALSE(directional(re.direction, s_prev, s_new))
              << "iter " << iter << " guard " << k << " skipped a "
              << "crossing in (" << s.time(i - 1) << ", " << s.time(i)
              << "]";
        }
        s_prev = s_new;
      }
    }
  }
}

}  // namespace
}  // namespace omx::ode
