// Common subexpression elimination (§3.3): extraction correctness,
// semantic preservation, op-count accounting, thresholds, and the
// per-task vs global sharing contrast the paper measures.
#include <gtest/gtest.h>

#include <cmath>

#include "omx/codegen/cse.hpp"
#include "omx/expr/eval.hpp"
#include "omx/support/rng.hpp"

namespace omx::codegen {
namespace {

using expr::Ex;

double eval_cse(expr::Context& ctx, const CseResult& r, std::size_t root,
                expr::Env env) {
  for (const CseBinding& b : r.bindings) {
    env.set(b.temp, expr::eval(ctx.pool, b.value, env));
  }
  return expr::eval(ctx.pool, r.roots[root], env);
}

TEST(Cse, ExtractsSharedNode) {
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex shared = sin(x) * cos(x);
  const Ex a = shared + 1.0;
  const Ex b = shared * 2.0;
  const CseResult r =
      eliminate_common_subexpressions(ctx, {a.id(), b.id()}, {});
  EXPECT_EQ(r.num_shared(), 1u);
  expr::Env env;
  env.set(ctx.symbol("x"), 0.6);
  const double expected = std::sin(0.6) * std::cos(0.6);
  EXPECT_NEAR(eval_cse(ctx, r, 0, env), expected + 1.0, 1e-14);
  EXPECT_NEAR(eval_cse(ctx, r, 1, env), expected * 2.0, 1e-14);
}

TEST(Cse, NoSharingNoBindings) {
  expr::Context ctx;
  const Ex a = ctx.var("x") + 1.0;
  const Ex b = ctx.var("y") * 2.0;
  const CseResult r =
      eliminate_common_subexpressions(ctx, {a.id(), b.id()}, {});
  EXPECT_EQ(r.num_shared(), 0u);
  EXPECT_EQ(r.roots[0], a.id());
  EXPECT_EQ(r.roots[1], b.id());
}

TEST(Cse, LeavesAreNeverExtracted) {
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex a = x + x;          // x shared but it's a leaf
  const CseResult r = eliminate_common_subexpressions(ctx, {a.id()}, {});
  EXPECT_EQ(r.num_shared(), 0u);
}

TEST(Cse, SharingWithinOneRoot) {
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex s = x * x;
  const Ex e = s + s * s;
  const CseResult r = eliminate_common_subexpressions(ctx, {e.id()}, {});
  EXPECT_EQ(r.num_shared(), 1u);
  expr::Env env;
  env.set(ctx.symbol("x"), 3.0);
  EXPECT_DOUBLE_EQ(eval_cse(ctx, r, 0, env), 9.0 + 81.0);
}

TEST(Cse, NestedBindingsReferenceEarlierTemps) {
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex inner = x + 1.0;
  const Ex outer = inner * inner;  // shares inner
  const Ex a = outer + inner;
  const Ex b = outer - 2.0;
  const CseResult r =
      eliminate_common_subexpressions(ctx, {a.id(), b.id()}, {});
  EXPECT_EQ(r.num_shared(), 2u);  // inner and outer
  expr::Env env;
  env.set(ctx.symbol("x"), 2.0);
  EXPECT_DOUBLE_EQ(eval_cse(ctx, r, 0, env), 9.0 + 3.0);
  EXPECT_DOUBLE_EQ(eval_cse(ctx, r, 1, env), 7.0);
}

TEST(Cse, MinOpsThresholdSkipsSmallShared) {
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex small = x + 1.0;                   // 1 op
  const Ex big = sin(x) * cos(x) + exp(x);    // 4 ops
  const Ex a = small + big;
  const Ex b = small * big;
  CseOptions opts;
  opts.min_ops = 3;
  const CseResult r =
      eliminate_common_subexpressions(ctx, {a.id(), b.id()}, opts);
  EXPECT_EQ(r.num_shared(), 1u);  // only `big`
}

TEST(Cse, TempPrefixIsRespected) {
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex s = x * x;
  CseOptions opts;
  opts.temp_prefix = "tmp_";
  const CseResult r = eliminate_common_subexpressions(
      ctx, {(s + s).id()}, opts);
  ASSERT_EQ(r.num_shared(), 1u);
  EXPECT_EQ(ctx.names.name(r.bindings[0].temp), "tmp_0");
}

TEST(Cse, OpCountNeverIncreases) {
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex s = sin(x) * cos(x);
  const Ex a = s + s;
  const std::size_t before = ctx.pool.tree_op_count(a.id());
  const CseResult r = eliminate_common_subexpressions(ctx, {a.id()}, {});
  EXPECT_LE(cse_op_count(ctx.pool, r), before);
}

TEST(Cse, GlobalSharingBeatsPerUnitSharing) {
  // The §3.3 effect: expressions shared ACROSS equations can only be
  // eliminated when the equations are in one compilation unit.
  expr::Context ctx;
  const Ex x = ctx.var("x");
  const Ex y = ctx.var("y");
  const Ex heavy = sin(x * y) * exp(x + y) + sqrt(x * x + y * y);
  const Ex eq1 = heavy + x;
  const Ex eq2 = heavy - y;

  const CseResult global =
      eliminate_common_subexpressions(ctx, {eq1.id(), eq2.id()}, {});
  CseOptions o1;
  o1.temp_prefix = "u1$";
  const CseResult unit1 =
      eliminate_common_subexpressions(ctx, {eq1.id()}, o1);
  CseOptions o2;
  o2.temp_prefix = "u2$";
  const CseResult unit2 =
      eliminate_common_subexpressions(ctx, {eq2.id()}, o2);

  const std::size_t split_ops = cse_op_count(ctx.pool, unit1) +
                                cse_op_count(ctx.pool, unit2);
  EXPECT_LT(cse_op_count(ctx.pool, global), split_ops);
}

class CseProperty : public ::testing::TestWithParam<int> {};

TEST_P(CseProperty, RandomDagsPreserveSemantics) {
  expr::Context ctx;
  omx::SplitMix64 rng(31 + static_cast<std::uint64_t>(GetParam()));
  // Build a random DAG with deliberate sharing: maintain a pool of
  // subexpressions and combine random picks.
  std::vector<Ex> nodes{ctx.var("x"), ctx.var("y"), ctx.lit(2.0)};
  for (int i = 0; i < 25; ++i) {
    const Ex a = nodes[rng.below(nodes.size())];
    const Ex b = nodes[rng.below(nodes.size())];
    switch (rng.below(4)) {
      case 0: nodes.push_back(a + b); break;
      case 1: nodes.push_back(a - b); break;
      case 2: nodes.push_back(a * b); break;
      default: nodes.push_back(tanh(a) + cos(b)); break;
    }
  }
  std::vector<expr::ExprId> roots;
  for (int i = 0; i < 4; ++i) {
    roots.push_back(nodes[nodes.size() - 1 - rng.below(8)].id());
  }
  const CseResult r = eliminate_common_subexpressions(ctx, roots, {});

  for (int pt = 0; pt < 5; ++pt) {
    expr::Env env;
    env.set(ctx.symbol("x"), rng.uniform(-2, 2));
    env.set(ctx.symbol("y"), rng.uniform(-2, 2));
    for (std::size_t k = 0; k < roots.size(); ++k) {
      const double direct = expr::eval(ctx.pool, roots[k], env);
      const double via_cse = eval_cse(ctx, r, k, env);
      EXPECT_NEAR(via_cse, direct, 1e-9 * std::max(1.0, std::fabs(direct)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CseProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace omx::codegen
