// LPT and semi-dynamic LPT scheduling (§3.2.3), including Graham's
// (4/3 - 1/3m) bound as a property test.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "omx/sched/semidynamic.hpp"
#include "omx/support/diagnostics.hpp"
#include "omx/support/rng.hpp"

namespace omx::sched {
namespace {

TEST(Lpt, AssignsEveryTaskExactlyOnce) {
  const std::vector<double> w{5, 3, 8, 1, 9, 2};
  const Schedule s = lpt_schedule(w, 3);
  std::vector<int> seen(w.size(), 0);
  for (const auto& tasks : s) {
    for (auto t : tasks) {
      seen[t] += 1;
    }
  }
  for (int c : seen) {
    EXPECT_EQ(c, 1);
  }
}

TEST(Lpt, BalancesSimpleCase) {
  // {9, 8, 5, 3, 2, 1} on 2 workers: LPT gives 9+3+2=14 / 8+5+1=14.
  const std::vector<double> w{5, 3, 8, 1, 9, 2};
  const Schedule s = lpt_schedule(w, 2);
  EXPECT_DOUBLE_EQ(makespan(w, s), 14.0);
  EXPECT_DOUBLE_EQ(imbalance(w, s), 1.0);
}

TEST(Lpt, SingleWorkerGetsEverything) {
  const std::vector<double> w{1, 2, 3};
  const Schedule s = lpt_schedule(w, 1);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].size(), 3u);
  EXPECT_DOUBLE_EQ(makespan(w, s), 6.0);
}

TEST(Lpt, MoreWorkersThanTasks) {
  const std::vector<double> w{4, 2};
  const Schedule s = lpt_schedule(w, 5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(makespan(w, s), 4.0);
}

TEST(Lpt, DeterministicTieBreaking) {
  const std::vector<double> w{1, 1, 1, 1};
  const Schedule a = lpt_schedule(w, 2);
  const Schedule b = lpt_schedule(w, 2);
  EXPECT_EQ(a, b);
}

TEST(Lpt, EmptyTaskList) {
  const std::vector<double> w;
  const Schedule s = lpt_schedule(w, 3);
  EXPECT_DOUBLE_EQ(makespan(w, s), 0.0);
}

class LptBound : public ::testing::TestWithParam<int> {};

TEST_P(LptBound, ListSchedulingBoundAndLowerBound) {
  omx::SplitMix64 rng(11 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 1 + rng.below(8);
  const std::size_t n = 1 + rng.below(40);
  std::vector<double> w(n);
  double total = 0.0, largest = 0.0;
  for (double& v : w) {
    v = rng.uniform(0.1, 10.0);
    total += v;
    largest = std::max(largest, v);
  }
  const Schedule s = lpt_schedule(w, m);
  const double ms = makespan(w, s);
  const double lb = makespan_lower_bound(w, m);
  // Any list schedule satisfies ms <= total/m + (1 - 1/m) * largest.
  EXPECT_LE(ms, total / static_cast<double>(m) +
                    (1.0 - 1.0 / static_cast<double>(m)) * largest + 1e-9)
      << "m=" << m << " n=" << n;
  EXPECT_GE(ms, lb * (1.0 - 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LptBound, ::testing::Range(0, 50));

namespace {
// Exhaustive optimum for small instances (assignment enumeration).
double brute_force_opt(const std::vector<double>& w, std::size_t m) {
  const std::size_t n = w.size();
  std::vector<std::size_t> assign(n, 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    std::vector<double> load(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      load[assign[i]] += w[i];
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
    std::size_t k = 0;
    while (k < n && ++assign[k] == m) {
      assign[k++] = 0;
    }
    if (k == n) {
      break;
    }
  }
  return best;
}
}  // namespace

class LptGraham : public ::testing::TestWithParam<int> {};

TEST_P(LptGraham, WithinGrahamFactorOfExactOptimum) {
  omx::SplitMix64 rng(311 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 2 + rng.below(2);   // 2..3 workers
  const std::size_t n = 3 + rng.below(6);   // 3..8 tasks
  std::vector<double> w(n);
  for (double& v : w) {
    v = rng.uniform(0.5, 10.0);
  }
  const double ms = makespan(w, lpt_schedule(w, m));
  const double opt = brute_force_opt(w, m);
  const double graham = 4.0 / 3.0 - 1.0 / (3.0 * static_cast<double>(m));
  EXPECT_LE(ms, graham * opt * (1.0 + 1e-12)) << "m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LptGraham, ::testing::Range(0, 25));

TEST(SemiDynamic, StartsFromStaticWeights) {
  SemiDynamicLpt s({10.0, 1.0, 1.0, 1.0}, 2);
  // Heaviest task alone on one worker.
  const Schedule& sch = s.schedule();
  bool found_lone = false;
  for (const auto& tasks : sch) {
    if (tasks.size() == 1 && tasks[0] == 0) {
      found_lone = true;
    }
  }
  EXPECT_TRUE(found_lone);
}

TEST(SemiDynamic, AdaptsToMeasuredTimes) {
  // Static weights say task 0 is heavy; measurements say task 3 is.
  SemiDynamicOptions opts;
  opts.reschedule_period = 2;
  opts.smoothing = 1.0;
  SemiDynamicLpt s({10.0, 1.0, 1.0, 1.0}, 2, opts);
  const std::vector<double> measured{1.0, 1.0, 1.0, 50.0};
  EXPECT_FALSE(s.record(measured));  // 1st call: below period
  EXPECT_TRUE(s.record(measured));   // 2nd call triggers rebuild
  bool task3_alone = false;
  for (const auto& tasks : s.schedule()) {
    if (tasks.size() == 1 && tasks[0] == 3) {
      task3_alone = true;
    }
  }
  EXPECT_TRUE(task3_alone);
  EXPECT_DOUBLE_EQ(s.predicted()[3], 50.0);
}

TEST(SemiDynamic, SmoothingBlendsMeasurements) {
  SemiDynamicOptions opts;
  opts.reschedule_period = 100;
  opts.smoothing = 0.5;
  SemiDynamicLpt s({1.0, 1.0}, 1, opts);
  s.record(std::vector<double>{4.0, 2.0});  // first: replaces outright
  EXPECT_DOUBLE_EQ(s.predicted()[0], 4.0);
  s.record(std::vector<double>{8.0, 2.0});
  EXPECT_DOUBLE_EQ(s.predicted()[0], 6.0);  // (4+8)/2
}

TEST(SemiDynamic, ResetWorkersReschedulesImmediately) {
  SemiDynamicLpt s({3.0, 2.0, 1.0}, 1);
  const std::size_t before = s.num_reschedules();
  s.reset_workers(3);
  EXPECT_EQ(s.schedule().size(), 3u);
  EXPECT_EQ(s.num_reschedules(), before + 1);
}

TEST(SemiDynamic, MeasurementSizeMismatchIsABug) {
  SemiDynamicLpt s({1.0, 1.0}, 1);
  EXPECT_THROW(s.record(std::vector<double>{1.0}), omx::Bug);
}

}  // namespace
}  // namespace omx::sched
