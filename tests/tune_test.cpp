// Performance-model layer suite: the least-squares substrate, the LPT
// makespan predictor, the ensemble/stiff cost models on synthetic data
// with known coefficients, and the AutoTuner's mode/drift/export
// behavior. The integration test pins the determinism contract: tuning
// only moves work (workers/batch), so an OMX_TUNE=on ensemble solve is
// bitwise identical to the untuned one.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "omx/ode/ensemble.hpp"
#include "omx/support/json.hpp"
#include "omx/tune/autotuner.hpp"
#include "omx/tune/costmodel.hpp"
#include "omx/tune/fit.hpp"

namespace omx::tune {
namespace {

// ------------------------------------------------------------- fitting

TEST(TuneFit, RecoversExactCoefficientsFromNoiselessData) {
  // y = 2*x0 + 0.5*x1 - 3*x2 over a full-rank sample set.
  const std::vector<std::vector<double>> rows = {
      {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0},
      {1.0, 2.0, 3.0}, {4.0, 1.0, 2.0},
  };
  std::vector<double> y;
  for (const auto& r : rows) {
    y.push_back(2.0 * r[0] + 0.5 * r[1] - 3.0 * r[2]);
  }
  const FitResult f = fit_least_squares(rows, y);
  ASSERT_EQ(f.coef.size(), 3u);
  EXPECT_FALSE(f.degenerate);
  EXPECT_NEAR(f.coef[0], 2.0, 1e-9);
  EXPECT_NEAR(f.coef[1], 0.5, 1e-9);
  EXPECT_NEAR(f.coef[2], -3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
  EXPECT_NEAR(f.rss, 0.0, 1e-12);
  const std::vector<double> probe = {2.0, 2.0, 2.0};
  EXPECT_NEAR(f.predict(probe), 2.0 * 2.0 + 0.5 * 2.0 - 3.0 * 2.0, 1e-9);
}

TEST(TuneFit, EquilibrationHandlesWildlyScaledColumns) {
  // A per-call overhead column (~1) next to a total-work column (~1e9).
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 6; ++i) {
    const double work = 1e9 * i;
    const double calls = 10.0 * i * i;
    rows.push_back({calls, work});
    y.push_back(3e-6 * calls + 2e-9 * work);
  }
  const FitResult f = fit_least_squares(rows, y);
  ASSERT_EQ(f.coef.size(), 2u);
  EXPECT_FALSE(f.degenerate);
  EXPECT_NEAR(f.coef[0], 3e-6, 1e-12);
  EXPECT_NEAR(f.coef[1], 2e-9, 1e-15);
}

TEST(TuneFit, DegenerateInputsNeverThrow) {
  // Empty input.
  FitResult f = fit_least_squares({}, {});
  EXPECT_TRUE(f.degenerate);
  EXPECT_TRUE(f.coef.empty());

  // Fewer samples than terms.
  f = fit_least_squares({{1.0, 2.0, 3.0}}, {6.0});
  EXPECT_TRUE(f.degenerate);
  ASSERT_EQ(f.coef.size(), 3u);

  // Exact collinearity: second column is 2x the first.
  f = fit_least_squares(
      {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}, {4.0, 8.0}}, {1, 2, 3, 4});
  EXPECT_TRUE(f.degenerate);

  // Zero-variance (all-zero) column gets a zero coefficient; the live
  // column still fits.
  f = fit_least_squares({{0.0, 1.0}, {0.0, 2.0}, {0.0, 3.0}}, {2, 4, 6});
  EXPECT_TRUE(f.degenerate);
  ASSERT_EQ(f.coef.size(), 2u);
  EXPECT_EQ(f.coef[0], 0.0);
  EXPECT_NEAR(f.coef[1], 2.0, 1e-9);
}

// ---------------------------------------------------------------- LPT

TEST(TuneLpt, HandComputableTwoWorkerSchedules) {
  // Sorted desc: 5,4,3,2,1. Bins: 5 | 4; 5,3 | 4; 5,3 | 4,2; 5,3 | 4,2,1
  // -> loads 8 and 7, makespan 8.
  EXPECT_DOUBLE_EQ(lpt_makespan({5, 4, 3, 2, 1}, 2), 8.0);
  // Sorted desc: 4,3,3,2. Bins: 4 | 3; 4,3(tie->lowest? no: bin1 has 3)
  // 4 | 3,3; 4,2 | 3,3 -> loads 6 and 6, makespan 6.
  EXPECT_DOUBLE_EQ(lpt_makespan({4, 3, 3, 2}, 2), 6.0);
}

TEST(TuneLpt, EdgeCases) {
  EXPECT_DOUBLE_EQ(lpt_makespan({1, 2, 3}, 0), 0.0);
  EXPECT_DOUBLE_EQ(lpt_makespan({}, 4), 0.0);
  // One worker serializes everything.
  EXPECT_DOUBLE_EQ(lpt_makespan({1.5, 2.5, 3.0}, 1), 7.0);
  // More workers than tasks: makespan is the largest task.
  EXPECT_DOUBLE_EQ(lpt_makespan({1, 2, 3}, 8), 3.0);
}

// ------------------------------------------------------ ensemble model

EnsembleObservation synth_ensemble(std::size_t scenarios,
                                   std::size_t workers, std::size_t batch,
                                   double evals_per_scenario,
                                   std::size_t hw) {
  EnsembleObservation o;
  o.problem_n = 8;
  o.scenarios = scenarios;
  o.workers = workers;
  o.batch = batch;
  o.lane_evals = evals_per_scenario * static_cast<double>(scenarios);
  // Generate seconds from the model's own feature map with known
  // coefficients a=2e-6, b=1e-7, c=5e-3.
  const std::vector<double> x =
      EnsembleModel::features(scenarios, workers, batch, o.lane_evals, hw);
  o.seconds = 2e-6 * x[0] + 1e-7 * x[1] + 5e-3 * x[2];
  return o;
}

TEST(TuneEnsembleModel, RecoversSyntheticCoefficientsAndPicksArgmin) {
  constexpr std::size_t kHw = 4;
  EnsembleModel m(kHw);
  for (const auto& [w, b] : {std::pair<std::size_t, std::size_t>{1, 1},
                            {2, 4},
                            {4, 8},
                            {1, 16},
                            {4, 2}}) {
    m.add(synth_ensemble(32, w, b, 500.0, kHw));
  }
  ASSERT_TRUE(m.refit());
  ASSERT_TRUE(m.ready());
  const FitResult& f = m.fit_result();
  ASSERT_EQ(f.coef.size(), 3u);
  EXPECT_NEAR(f.coef[0], 2e-6, 1e-10);
  EXPECT_NEAR(f.coef[1], 1e-7, 1e-11);
  EXPECT_NEAR(f.coef[2], 5e-3, 1e-7);

  // Exhaustively evaluate the same candidate grid the picker scans and
  // confirm pick() lands on the argmin.
  const EnsembleConfig best = m.pick(32, 4, 16);
  double best_seen = 1e300;
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t b : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8},
                                std::size_t{16}}) {
      best_seen = std::min(best_seen, m.predict(32, w, b));
    }
  }
  EXPECT_NEAR(best.predicted_seconds, best_seen, 1e-12);
  EXPECT_NEAR(m.predict(32, best.workers, best.max_batch), best_seen, 1e-12);
}

TEST(TuneEnsembleModel, NotReadyUntilThreeDistinctConfigs) {
  EnsembleModel m(4);
  m.add(synth_ensemble(16, 1, 1, 100.0, 4));
  m.refit();
  EXPECT_FALSE(m.ready());
  // Re-observing the same config adds samples but no rank.
  m.add(synth_ensemble(16, 1, 1, 100.0, 4));
  m.refit();
  EXPECT_FALSE(m.ready());
  m.add(synth_ensemble(16, 2, 4, 100.0, 4));
  m.refit();
  EXPECT_FALSE(m.ready());
  m.add(synth_ensemble(16, 4, 8, 100.0, 4));
  m.refit();
  EXPECT_TRUE(m.ready());
}

TEST(TuneEnsembleModel, PredictionScalesWithScenarioCount) {
  constexpr std::size_t kHw = 2;
  EnsembleModel m(kHw);
  for (const auto& [w, b] : {std::pair<std::size_t, std::size_t>{1, 1},
                            {2, 2},
                            {1, 4},
                            {2, 8}}) {
    m.add(synth_ensemble(16, w, b, 200.0, kHw));
  }
  ASSERT_TRUE(m.refit());
  // Doubling the scenarios doubles lane_evals through evals/scenario, so
  // the work terms double; only the per-worker constant stays fixed.
  const double at16 = m.predict(16, 1, 4);
  const double at32 = m.predict(32, 1, 4);
  const double c = m.fit_result().coef[2];
  EXPECT_NEAR(at32 - c, 2.0 * (at16 - c), 1e-9);
}

// --------------------------------------------------------- stiff model

StiffObservation synth_stiff(bool sparse, int threads) {
  // dense: 1e-3 + 4e-4/T + 1e-5*T; sparse: 2e-4 + 6e-4/T + 8e-5*T.
  StiffObservation o;
  o.problem_n = 128;
  o.sparse = sparse;
  o.jac_threads = threads;
  const double t = threads;
  o.seconds = sparse ? 2e-4 + 6e-4 / t + 8e-5 * t
                     : 1e-3 + 4e-4 / t + 1e-5 * t;
  return o;
}

TEST(TuneStiffModel, RecoversSyntheticCurvesAndPicksBestBackend) {
  StiffModel m;
  for (const int t : {1, 2, 4, 8}) {
    m.add(synth_stiff(false, t));
    m.add(synth_stiff(true, t));
  }
  m.refit();
  ASSERT_TRUE(m.has_backend(false));
  ASSERT_TRUE(m.has_backend(true));
  const FitResult& dense = m.fit_result(false);
  ASSERT_EQ(dense.coef.size(), 3u);
  EXPECT_NEAR(dense.coef[0], 1e-3, 1e-9);
  EXPECT_NEAR(dense.coef[1], 4e-4, 1e-9);
  EXPECT_NEAR(dense.coef[2], 1e-5, 1e-9);

  // Sparse at its best thread count beats every dense configuration on
  // the synthetic surface, so the pick must be sparse.
  const std::optional<StiffConfig> best = m.pick(8);
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->sparse);
  double best_seen = 1e300;
  int best_t = 0;
  for (const int t : {1, 2, 4, 8}) {
    const double s = m.predict(true, t);
    if (s < best_seen) {
      best_seen = s;
      best_t = t;
    }
  }
  EXPECT_EQ(best->jac_threads, best_t);
  EXPECT_NEAR(best->predicted_seconds, best_seen, 1e-12);
}

TEST(TuneStiffModel, DegenerateBackendFallsBackToObservedMean) {
  StiffModel m;
  // Only one thread count observed: the per-backend fit cannot rank T,
  // so predict() must return the observed mean instead of extrapolating.
  m.add({64, false, 2, 1.0e-3});
  m.add({64, false, 2, 3.0e-3});
  m.refit();
  ASSERT_TRUE(m.has_backend(false));
  EXPECT_NEAR(m.predict(false, 2), 2.0e-3, 1e-12);
  // Asking about an unobserved thread count still answers (nearest
  // observed count), and pick() only competes at observed counts.
  const std::optional<StiffConfig> best = m.pick(8);
  ASSERT_TRUE(best.has_value());
  EXPECT_FALSE(best->sparse);
  EXPECT_EQ(best->jac_threads, 2);
}

// ------------------------------------------------------------ AutoTuner

TEST(TuneAutoTuner, PickIsNulloptWithoutAModel) {
  AutoTuner t;
  EXPECT_FALSE(t.pick_ensemble(8, 32, 4, 16).has_value());
  EXPECT_FALSE(t.pick_stiff(128, 4).has_value());
  EXPECT_FALSE(t.stiff_backend(128).has_value());
  EXPECT_FALSE(t.ensemble_ready(8));
}

TEST(TuneAutoTuner, CalibrationEnablesPicksAndResetDropsThem) {
  AutoTuner t;
  for (const auto& [w, b] : {std::pair<std::size_t, std::size_t>{1, 1},
                            {2, 4},
                            {4, 8},
                            {1, 16}}) {
    t.record_ensemble(synth_ensemble(32, w, b, 500.0, 4));
  }
  EXPECT_TRUE(t.ensemble_ready(8));
  const std::optional<EnsembleConfig> pick = t.pick_ensemble(8, 32, 4, 16);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(pick->workers, 1u);
  EXPECT_GE(pick->max_batch, 1u);
  // Unknown problem size stays unpicked.
  EXPECT_FALSE(t.pick_ensemble(99, 32, 4, 16).has_value());
  t.reset();
  EXPECT_FALSE(t.ensemble_ready(8));
  EXPECT_FALSE(t.pick_ensemble(8, 32, 4, 16).has_value());
}

TEST(TuneAutoTuner, StiffBackendVerdictNeedsBothBackends) {
  AutoTuner t;
  for (const int th : {1, 2, 4}) {
    t.record_stiff(synth_stiff(false, th));
  }
  // Dense-only data: no backend verdict (the static fill heuristic in
  // make_jac_plan stays in charge), but thread picks within dense work.
  EXPECT_FALSE(t.stiff_backend(128).has_value());
  ASSERT_TRUE(t.pick_stiff(128, 4).has_value());
  for (const int th : {1, 2, 4}) {
    t.record_stiff(synth_stiff(true, th));
  }
  const std::optional<bool> verdict = t.stiff_backend(128);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(*verdict);  // synthetic sparse curve is cheaper
}

TEST(TuneAutoTuner, DriftTriggersRefitAndCounter) {
  AutoTuner t;
  const std::uint64_t drift0 = t.drift_events();
  // Warm the model on a consistent synthetic surface...
  for (int rep = 0; rep < 5; ++rep) {
    for (const auto& [w, b] : {std::pair<std::size_t, std::size_t>{1, 1},
                              {2, 4},
                              {4, 8},
                              {1, 16}}) {
      t.record_ensemble(synth_ensemble(32, w, b, 500.0, 4));
    }
  }
  ASSERT_TRUE(t.ensemble_ready(8));
  // ...then feed a run 10x slower than predicted (machine got loaded).
  EnsembleObservation slow = synth_ensemble(32, 2, 4, 500.0, 4);
  slow.seconds *= 10.0;
  const std::uint64_t refits0 = t.refits();
  t.record_ensemble(slow);
  EXPECT_GT(t.drift_events(), drift0);
  EXPECT_GT(t.refits(), refits0);
}

TEST(TuneAutoTuner, ModelJsonParsesAndCarriesCoefficients) {
  AutoTuner t;
  for (const auto& [w, b] : {std::pair<std::size_t, std::size_t>{1, 1},
                            {2, 4},
                            {4, 8}}) {
    t.record_ensemble(synth_ensemble(32, w, b, 500.0, 4));
  }
  for (const int th : {1, 2, 4}) {
    t.record_stiff(synth_stiff(false, th));
  }
  const std::string text = t.model_json();
  const support::json::Value doc = support::json::parse(text);
  const auto* ensembles = doc.find("ensemble");
  ASSERT_NE(ensembles, nullptr);
  ASSERT_EQ(ensembles->array.size(), 1u);
  const auto& em = ensembles->array[0];
  ASSERT_NE(em.find("fit"), nullptr);
  EXPECT_EQ(em.find("fit")->find("coef")->array.size(), 3u);
  ASSERT_NE(em.find("residuals"), nullptr);
  EXPECT_EQ(em.find("residuals")->array.size(), 3u);
  const auto* stiffs = doc.find("stiff");
  ASSERT_NE(stiffs, nullptr);
  ASSERT_EQ(stiffs->array.size(), 1u);
  ASSERT_NE(stiffs->array[0].find("dense_fit"), nullptr);
  ASSERT_NE(doc.find("counters"), nullptr);
}

// ------------------------------------------------ integration + stress

ode::Problem oscillator() {
  ode::Problem p;
  p.n = 2;
  p.set_rhs([](double, std::span<const double> y, std::span<double> f) {
    f[0] = y[1];
    f[1] = -y[0];
  });
  p.t0 = 0.0;
  p.tend = 3.0;
  p.y0 = {1.0, 0.0};
  return p;
}

ode::EnsembleSpec perturbed_spec(std::size_t scenarios) {
  ode::EnsembleSpec spec;
  for (std::size_t s = 0; s < scenarios; ++s) {
    spec.initial_states.push_back(
        {1.0 + 0.05 * static_cast<double>(s),
         0.02 * static_cast<double>(s)});
  }
  return spec;
}

/// RAII mode override so a failing assertion cannot leak kOn into the
/// other suites in this binary.
struct ModeGuard {
  explicit ModeGuard(Mode m) { set_mode(m); }
  ~ModeGuard() { set_mode(Mode::kOff); }
};

TEST(TuneIntegration, TunedEnsembleSolveIsBitwiseIdenticalToUntuned) {
  const ode::Problem p = oscillator();
  ode::EnsembleSpec spec = perturbed_spec(8);
  spec.workers = 1;
  spec.max_batch = 4;

  set_mode(Mode::kOff);
  AutoTuner::global().reset();
  const ode::EnsembleResult untuned =
      ode::solve_ensemble(p, ode::Method::kDopri5, {}, spec);

  {
    // Calibrate across a few configs, then let the model drive.
    ModeGuard guard(Mode::kCalibrate);
    for (const auto& [w, b] : {std::pair<std::size_t, std::size_t>{1, 1},
                              {2, 2},
                              {1, 4},
                              {2, 4}}) {
      ode::EnsembleSpec probe = perturbed_spec(8);
      probe.workers = w;
      probe.max_batch = b;
      ode::solve_ensemble(p, ode::Method::kDopri5, {}, probe);
    }
    ASSERT_TRUE(AutoTuner::global().ensemble_ready(p.n));
    set_mode(Mode::kOn);
    const ode::EnsembleResult tuned =
        ode::solve_ensemble(p, ode::Method::kDopri5, {}, spec);

    ASSERT_EQ(tuned.solutions.size(), untuned.solutions.size());
    for (std::size_t s = 0; s < tuned.solutions.size(); ++s) {
      const ode::Solution& a = untuned.solutions[s];
      const ode::Solution& b = tuned.solutions[s];
      ASSERT_EQ(b.size(), a.size()) << "scenario " << s;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(b.time(i), a.time(i)) << "scenario " << s << " step " << i;
        const auto ya = a.state(i);
        const auto yb = b.state(i);
        for (std::size_t q = 0; q < ya.size(); ++q) {
          EXPECT_EQ(yb[q], ya[q]) << "scenario " << s << " step " << i;
        }
      }
      EXPECT_EQ(b.stats.steps, a.stats.steps);
      EXPECT_EQ(b.stats.rhs_calls, a.stats.rhs_calls);
    }
  }
  AutoTuner::global().reset();
}

TEST(TuneIntegration, OffModeRecordsNothing) {
  set_mode(Mode::kOff);
  AutoTuner::global().reset();
  const ode::Problem p = oscillator();
  ode::EnsembleSpec spec = perturbed_spec(4);
  ode::solve_ensemble(p, ode::Method::kDopri5, {}, spec);
  EXPECT_FALSE(AutoTuner::global().ensemble_ready(p.n));
  EXPECT_TRUE(AutoTuner::global().model_json().find("\"ensemble\":[]") !=
              std::string::npos);
}

TEST(TuneStress, ConcurrentRecordPickExportIsRaceFree) {
  // TSan target (ci.sh --tsan runs suites matching Tune): hammer one
  // tuner from recorder, picker and exporter threads at once.
  AutoTuner t;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&t, &stop, w] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t cfg = (i + static_cast<std::size_t>(w)) % 4;
        t.record_ensemble(synth_ensemble(32, 1u << cfg, 1u << (cfg + 1),
                                         500.0, 4));
        t.record_stiff(synth_stiff((i & 1) != 0, 1 << (i % 3)));
        ++i;
      }
    });
  }
  threads.emplace_back([&t, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)t.pick_ensemble(8, 32, 4, 16);
      (void)t.pick_stiff(128, 4);
      (void)t.stiff_backend(128);
    }
  });
  threads.emplace_back([&t, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string j = t.model_json();
      EXPECT_FALSE(j.empty());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& th : threads) {
    th.join();
  }
  // The models stayed coherent through the contention.
  EXPECT_TRUE(t.ensemble_ready(8));
  EXPECT_TRUE(t.pick_stiff(128, 4).has_value());
}

}  // namespace
}  // namespace omx::tune
