// Task partitioning (§3.2): grouping of small assignments, splitting of
// large +/- chains into partial sums, self-containedness (algebraics
// inlined), and cost estimates.
#include <gtest/gtest.h>

#include "omx/codegen/tasks.hpp"
#include "omx/expr/eval.hpp"
#include "omx/model/flatten.hpp"
#include "omx/parser/parser.hpp"

namespace omx::codegen {
namespace {

model::FlatSystem flatten_src(expr::Context& ctx, const std::string& src) {
  model::Model m = parser::parse_model(src, ctx);
  return model::flatten(m);
}

constexpr const char* kSmallSystem = R"(
model M
  class A
    var a start 1, b start 1, c start 1, d start 1;
    eq der(a) == -a;
    eq der(b) == -b;
    eq der(c) == -c;
    eq der(d) == -d;
  end
  instance i : A;
end)";

TEST(Tasks, GroupsSmallAssignments) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kSmallSystem);
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = 100;  // force everything into one task
  const TaskPlan plan = plan_tasks(f, set, opts);
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].units.size(), 4u);
}

TEST(Tasks, ZeroThresholdKeepsTasksSeparate) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kSmallSystem);
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = 0;
  const TaskPlan plan = plan_tasks(f, set, opts);
  EXPECT_EQ(plan.tasks.size(), 4u);
}

TEST(Tasks, EveryStateIsCoveredExactlyOncePerPart) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kSmallSystem);
  const AssignmentSet set = build_assignments(f);
  const TaskPlan plan = plan_tasks(f, set, {});
  std::vector<int> coverage(f.num_states(), 0);
  for (const TaskSpec& t : plan.tasks) {
    for (const TaskUnit& u : t.units) {
      coverage[static_cast<std::size_t>(u.state)] += 1;
    }
  }
  for (int c : coverage) {
    EXPECT_EQ(c, 1);
  }
}

TEST(Tasks, AlgebraicsAreInlined) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    var a;
    eq a == sin(x)*x;
    eq der(x) == a + a*a;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  const TaskPlan plan = plan_tasks(f, set, {});
  ASSERT_EQ(plan.tasks.size(), 1u);
  // The inlined RHS must not reference the algebraic symbol.
  std::vector<SymbolId> syms;
  ctx.pool.free_syms(plan.tasks[0].units[0].rhs, syms);
  for (SymbolId s : syms) {
    EXPECT_EQ(f.algebraic_index(s), -1)
        << "algebraic leaked: " << ctx.names.name(s);
  }
}

TEST(Tasks, SplitsLargeSumChains) {
  expr::Context ctx;
  // A long sum: 12 sin() terms (~24 ops); split limit 8 forces parts.
  std::string rhs = "sin(1*x)";
  for (int i = 2; i <= 12; ++i) {
    rhs += " + sin(" + std::to_string(i) + "*x)";
  }
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    eq der(x) == )" + rhs + R"(;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = 0;
  opts.max_ops_per_task = 8;
  const TaskPlan plan = plan_tasks(f, set, opts);
  EXPECT_GT(plan.num_split_units(), 1u);
  // All parts target state 0 and num_parts is consistent.
  int total_parts = 0;
  for (const TaskSpec& t : plan.tasks) {
    for (const TaskUnit& u : t.units) {
      EXPECT_EQ(u.state, 0);
      ++total_parts;
      EXPECT_GT(u.num_parts, 1);
    }
  }
  EXPECT_EQ(total_parts, plan.tasks[0].units[0].num_parts *
                             1);  // one split equation
}

TEST(Tasks, SplitPreservesSemantics) {
  expr::Context ctx;
  std::string rhs = "sin(1*x)";
  for (int i = 2; i <= 12; ++i) {
    rhs += (i % 3 == 0 ? " - sin(" : " + sin(") + std::to_string(i) + "*x)";
  }
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    eq der(x) == )" + rhs + R"(;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = 0;
  opts.max_ops_per_task = 8;
  const TaskPlan plan = plan_tasks(f, set, opts);

  // Sum of the parts == direct evaluation.
  expr::Env env;
  env.set(ctx.symbol("i.x"), 0.37);
  double parts_sum = 0.0;
  for (const TaskSpec& t : plan.tasks) {
    for (const TaskUnit& u : t.units) {
      parts_sum += expr::eval(ctx.pool, u.rhs, env);
    }
  }
  std::vector<double> y{0.37}, ydot(1);
  f.eval_rhs(0.0, y, ydot);
  EXPECT_NEAR(parts_sum, ydot[0], 1e-12);
}

TEST(Tasks, UnsplittableProductStaysWhole) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    eq der(x) == sin(x)*cos(x)*exp(x)*tanh(x)*sqrt(x*x+1)*x*x*x*x;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = 0;
  opts.max_ops_per_task = 3;  // way below the product's size
  const TaskPlan plan = plan_tasks(f, set, opts);
  EXPECT_EQ(plan.num_split_units(), 0u);
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].units[0].num_parts, 1);
}

TEST(Tasks, EstimatesArePositiveAndOrdered) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var small start 1, big start 1;
    eq der(small) == -small;
    eq der(big) == sin(big)*cos(big) + exp(big)*tanh(big) + big*big*big;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = 0;
  const TaskPlan plan = plan_tasks(f, set, opts);
  ASSERT_EQ(plan.tasks.size(), 2u);
  EXPECT_GT(plan.tasks[1].est_ops, plan.tasks[0].est_ops);
}

TEST(Tasks, LabelsNameTheStates) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kSmallSystem);
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = 0;
  const TaskPlan plan = plan_tasks(f, set, opts);
  EXPECT_NE(plan.tasks[0].label.find("i.a'"), std::string::npos);
}

}  // namespace
}  // namespace omx::codegen
