#include <gtest/gtest.h>

#include "omx/support/diagnostics.hpp"
#include "omx/support/interner.hpp"
#include "omx/support/json.hpp"
#include "omx/support/rng.hpp"
#include "omx/support/timer.hpp"

namespace omx {
namespace {

TEST(Interner, AssignsDenseIdsInOrder) {
  Interner in;
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.intern("beta"), 1u);
  EXPECT_EQ(in.intern("gamma"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(Interner, InternIsIdempotent) {
  Interner in;
  const SymbolId a = in.intern("x");
  EXPECT_EQ(in.intern("x"), a);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, RoundTripsNames) {
  Interner in;
  const SymbolId a = in.intern("w[3].contact.fn");
  EXPECT_EQ(in.name(a), "w[3].contact.fn");
}

TEST(Interner, FindDoesNotCreate) {
  Interner in;
  EXPECT_EQ(in.find("missing"), kInvalidSymbol);
  EXPECT_EQ(in.size(), 0u);
  in.intern("present");
  EXPECT_EQ(in.find("present"), 0u);
}

TEST(Interner, SurvivesManyInsertions) {
  // Regression guard for the stored-string_view stability issue: small
  // (SSO) strings must stay addressable across container growth.
  Interner in;
  for (int i = 0; i < 10000; ++i) {
    in.intern("s" + std::to_string(i));
  }
  for (int i = 0; i < 10000; ++i) {
    const std::string s = "s" + std::to_string(i);
    EXPECT_EQ(in.find(s), static_cast<SymbolId>(i)) << s;
  }
}

TEST(Interner, EmptyAndWeirdStrings) {
  Interner in;
  const SymbolId e = in.intern("");
  EXPECT_EQ(in.name(e), "");
  const SymbolId w = in.intern("a b\tc\n");
  EXPECT_EQ(in.name(w), "a b\tc\n");
}

TEST(Diagnostics, ErrorCarriesLocation) {
  const Error e("bad thing", SourceLoc{3, 7});
  EXPECT_EQ(e.where().line, 3u);
  EXPECT_EQ(e.where().column, 7u);
  EXPECT_NE(std::string(e.what()).find("line 3:7"), std::string::npos);
}

TEST(Diagnostics, ErrorWithoutLocation) {
  const Error e("plain");
  EXPECT_FALSE(e.where().valid());
  EXPECT_STREQ(e.what(), "plain");
}

TEST(Diagnostics, RequireThrowsBug) {
  EXPECT_THROW(OMX_REQUIRE(false, "should fire"), Bug);
  EXPECT_NO_THROW(OMX_REQUIRE(true, "should not fire"));
}

TEST(Rng, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  SplitMix64 r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Timer, MeasuresMonotonically) {
  Stopwatch sw;
  const double a = sw.seconds();
  const double b = sw.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Timer, SpinForWaitsApproximately) {
  Stopwatch sw;
  spin_for(1e-4);
  EXPECT_GE(sw.seconds(), 1e-4);
}

TEST(Json, ParsesNestedDocument) {
  const support::json::Value v = support::json::parse(
      "{\"model\": \"m1\", \"scenarios\": 3, \"stream\": true,"
      " \"tol\": {\"rtol\": 1e-6}, \"rows\": [1, 2, 3], \"nil\": null}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("model", ""), "m1");
  EXPECT_EQ(v.get_number("scenarios", 0.0), 3.0);
  EXPECT_TRUE(v.get_bool("stream", false));
  const support::json::Value* tol = v.find("tol");
  ASSERT_NE(tol, nullptr);
  EXPECT_EQ(tol->get_number("rtol", 0.0), 1e-6);
  const support::json::Value* rows = v.find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 3u);
  EXPECT_EQ(rows->array[2].number, 3.0);
  ASSERT_NE(v.find("nil"), nullptr);
  EXPECT_TRUE(v.find("nil")->is_null());
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, DecodesStringEscapes) {
  const support::json::Value v = support::json::parse(
      "{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"}");
  EXPECT_EQ(v.get_string("s", ""), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(Json, TypedGettersDistinguishAbsentFromWrongType) {
  const support::json::Value v =
      support::json::parse("{\"n\": 4, \"s\": \"x\", \"nil\": null}");
  // Absent or null -> fallback.
  EXPECT_EQ(v.get_number("missing", 7.0), 7.0);
  EXPECT_EQ(v.get_number("nil", 7.0), 7.0);
  // Present with the wrong type -> malformed request, throws.
  EXPECT_THROW(v.get_number("s", 0.0), omx::Error);
  EXPECT_THROW(v.get_string("n", ""), omx::Error);
  EXPECT_THROW(v.get_bool("n", false), omx::Error);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(support::json::parse(""), omx::Error);
  EXPECT_THROW(support::json::parse("{"), omx::Error);
  EXPECT_THROW(support::json::parse("{\"a\": 1} trailing"), omx::Error);
  EXPECT_THROW(support::json::parse("{'a': 1}"), omx::Error);
  EXPECT_THROW(support::json::parse("{\"a\": 01}"), omx::Error);
  EXPECT_THROW(support::json::parse("[1, 2,]"), omx::Error);
  EXPECT_THROW(support::json::parse("\"\\x\""), omx::Error);
}

TEST(Json, RejectsRunawayNesting) {
  // 64 levels against the 32-level cap: attacker-controlled recursion
  // depth must not reach the stack guard.
  std::string deep;
  for (int i = 0; i < 64; ++i) {
    deep += "[";
  }
  EXPECT_THROW(support::json::parse(deep), omx::Error);
}

}  // namespace
}  // namespace omx
