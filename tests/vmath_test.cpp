// Accuracy and special-value tests for the branch-free vector-math
// runtime the native backend embeds into every compiled kernel
// (exec/vmath_functions.h). The same header is compiled here directly,
// so these bounds hold for the exact code the JIT'd kernels run.
//
// The solver-facing accuracy contract is the cross-backend 1e-12
// relative bar (exec_backend_test): vmath vs libm must stay well under
// it on solver-typical ranges. Observed worst case is ~1e-15 relative;
// the bounds below leave an order of magnitude of slack.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "omx/exec/vmath_functions.h"

namespace {

constexpr double kRelTol = 1e-13;

void expect_close(double got, double want, double x) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got)) << "x = " << x;
    return;
  }
  if (std::isinf(want)) {
    EXPECT_EQ(got, want) << "x = " << x;
    return;
  }
  const double scale = std::fmax(std::fabs(want), 1e-300);
  EXPECT_LE(std::fabs(got - want), kRelTol * scale)
      << "x = " << x << " got " << got << " want " << want;
}

/// Log-spaced magnitudes covering the solver-typical range plus a wide
/// margin, both signs, plus denormal-boundary and near-one points.
template <typename F>
void sweep(F&& check, double lo_exp, double hi_exp) {
  for (double e = lo_exp; e <= hi_exp; e += 0.17) {
    const double m = std::pow(10.0, e);
    check(m);
    check(-m);
    check(m * (1.0 + 1e-9));
  }
  for (double x : {0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 1.0 - 1e-15,
                   1.0 + 1e-15, 0.70710678118654752, 0.70710678118654757}) {
    check(x);
  }
}

TEST(Vmath, ExpMatchesLibm) {
  sweep([](double x) { expect_close(omx_exp(x), std::exp(x), x); }, -3.0,
        2.84);  // |x| up to ~700
  EXPECT_EQ(omx_exp(710.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(omx_exp(-745.0), 0.0);  // flushes past the subnormal tail
  EXPECT_EQ(omx_exp(0.0), 1.0);
  EXPECT_TRUE(std::isnan(omx_exp(std::nan(""))));
}

TEST(Vmath, LogMatchesLibm) {
  sweep(
      [](double x) {
        if (x > 0.0) {
          expect_close(omx_log(x), std::log(x), x);
        }
      },
      -300.0, 300.0);
  EXPECT_EQ(omx_log(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(omx_log(-1.0)));
  EXPECT_EQ(omx_log(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(omx_log(std::nan(""))));
  // Subnormals hit the 2^54 renormalization path.
  expect_close(omx_log(1e-310), std::log(1e-310), 1e-310);
  EXPECT_EQ(omx_log(1.0), 0.0);
}

TEST(Vmath, SinCosMatchLibm) {
  // The two-term Cody-Waite head product n*pio2_1 is exact only while
  // |n| < 2^20 (|x| below ~1.6e6); past that the reduction error grows
  // as |x|*2^-53. Solver angles live many orders of magnitude below.
  sweep(
      [](double x) {
        if (std::fabs(x) < 1.0e6) {
          expect_close(omx_sin(x), std::sin(x), x);
          expect_close(omx_cos(x), std::cos(x), x);
        }
      },
      -6.0, 9.0);
  for (int q = -8; q <= 8; ++q) {  // quadrant boundaries
    const double x = q * 0.78539816339744831;
    // At multiples of pi/2 one of the pair is a ~1e-16 residual whose
    // exact value is reduction round-off — relative comparison is
    // ill-conditioned there, so fall back to an absolute bound.
    for (bool cos_branch : {false, true}) {
      const double want = cos_branch ? std::cos(x) : std::sin(x);
      const double got = cos_branch ? omx_cos(x) : omx_sin(x);
      if (std::fabs(want) > 1e-10) {
        expect_close(got, want, x);
      } else {
        EXPECT_NEAR(got, want, 1e-15) << "x = " << x;
      }
    }
  }
  EXPECT_EQ(omx_sin(0.0), 0.0);
  EXPECT_TRUE(std::isnan(omx_sin(std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(std::isnan(omx_cos(std::nan(""))));
}

TEST(Vmath, TanhMatchesLibm) {
  sweep(
      [](double x) {
        const double want = std::tanh(x);
        const double got = omx_tanh(x);
        // The 1 - 2/(e^{2x}+1) form cancels around 1.0, leaving ~2^-52
        // *absolute* error; that only stays under 1e-13 relative once
        // |tanh x| clears ~2e-3, so test relative above 1e-2 and
        // absolute below.
        if (std::fabs(x) >= 1e-2) {
          expect_close(got, want, x);
        } else {
          EXPECT_LE(std::fabs(got - want), 3e-16) << "x = " << x;
        }
      },
      -6.0, 3.0);
  EXPECT_EQ(omx_tanh(1000.0), 1.0);
  EXPECT_EQ(omx_tanh(-1000.0), -1.0);
}

TEST(Vmath, HypotMatchesLibm) {
  const double xs[] = {0.0, 1e-300, 3e-5, 0.5, 1.0, 3.0, 4.0, 1e155, 1e300};
  for (double a : xs) {
    for (double b : xs) {
      const double want = std::hypot(a, b);
      const double got = omx_hypot(a, b);
      if (std::isinf(want)) {
        EXPECT_EQ(got, want);
      } else {
        const double scale = std::fmax(std::fabs(want), 1e-300);
        EXPECT_LE(std::fabs(got - want), 1e-12 * scale)
            << "hypot(" << a << ", " << b << ")";
      }
    }
  }
  EXPECT_EQ(omx_hypot(std::numeric_limits<double>::infinity(), 1.0),
            std::numeric_limits<double>::infinity());
}

TEST(Vmath, PowMatchesLibm) {
  const double bases[] = {1e-8, 0.3, 1.0, 1.5, 2.0, 7.0, 123.456, 1e8};
  const double exps[] = {-3.0, -1.5, -1.0, 0.0, 0.5, 1.0, 2.0, 3.5, 10.0};
  for (double a : bases) {
    for (double b : exps) {
      const double want = std::pow(a, b);
      const double got = omx_pow(a, b);
      // exp(b log a) amplifies: |b ln a| * 2^-52 relative.
      const double rel =
          1e-13 * std::fmax(1.0, std::fabs(b * std::log(a)));
      const double scale = std::fmax(std::fabs(want), 1e-300);
      EXPECT_LE(std::fabs(got - want), rel * scale)
          << "pow(" << a << ", " << b << ")";
    }
  }
  // Sign/special handling. Results go through exp(b log|a|), so integer
  // cases land within a few ulp of the exact value, not on it.
  EXPECT_NEAR(omx_pow(-2.0, 3.0), -8.0, 8.0 * 1e-13);
  EXPECT_NEAR(omx_pow(-2.0, 2.0), 4.0, 4.0 * 1e-13);
  EXPECT_TRUE(std::isnan(omx_pow(-2.0, 0.5)));
  EXPECT_EQ(omx_pow(5.0, 0.0), 1.0);
  EXPECT_EQ(omx_pow(1.0, 1e9), 1.0);
}

TEST(Vmath, FmaxFminMatchLibmOnOrderedInputs) {
  const double xs[] = {-3.0, -0.5, 0.0, 0.25, 1.0, 1e300};
  for (double a : xs) {
    for (double b : xs) {
      EXPECT_EQ(omx_fmax(a, b), std::fmax(a, b))
          << "fmax(" << a << ", " << b << ")";
      EXPECT_EQ(omx_fmin(a, b), std::fmin(a, b))
          << "fmin(" << a << ", " << b << ")";
    }
  }
  // libm NaN rule: a NaN operand yields the other operand.
  const double qnan = std::nan("");
  EXPECT_EQ(omx_fmax(qnan, 2.0), 2.0);
  EXPECT_EQ(omx_fmax(2.0, qnan), 2.0);
  EXPECT_EQ(omx_fmin(qnan, 2.0), 2.0);
  EXPECT_EQ(omx_fmin(2.0, qnan), 2.0);
  EXPECT_TRUE(std::isnan(omx_fmax(qnan, qnan)));
}

TEST(Vmath, BitwiseReproducible) {
  // The same input must give the same bits call to call (the ensemble
  // determinism contract leans on this); spot-check a few evaluations.
  for (double x : {0.123, 4.567, -89.0, 1e-7}) {
    const auto bits = [](double d) {
      std::uint64_t u;
      std::memcpy(&u, &d, sizeof(u));
      return u;
    };
    EXPECT_EQ(bits(omx_sin(x)), bits(omx_sin(x)));
    EXPECT_EQ(bits(omx_exp(x)), bits(omx_exp(x)));
    EXPECT_EQ(bits(omx_log(std::fabs(x))), bits(omx_log(std::fabs(x))));
  }
}

}  // namespace
