// Work-stealing stress suite: a synthetic kernel with randomized task
// durations runs under 1-16 workers with stealing on and off, asserting
// the pool's result is bit-for-bit equal to a single-threaded reference
// that accumulates tasks in id order through the same per-task
// accumulation buffers. Also covers worker-exception propagation (the
// old join-without-shutdown destructor hang) and the steal metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "omx/exec/rhs_kernel.hpp"
#include "omx/obs/recorder.hpp"
#include "omx/obs/registry.hpp"
#include "omx/runtime/parallel_rhs.hpp"
#include "omx/runtime/worker_pool.hpp"
#include "omx/sched/lpt.hpp"
#include "omx/support/rng.hpp"

namespace omx::runtime {
namespace {

constexpr std::uint32_t kNoThrow = 0xffffffffu;

// Synthetic task kernel: task k spins through iters[k] transcendental
// rounds (the randomized duration), then accumulates one partial sum per
// out slot. Consecutive tasks share output slots, so floating-point
// accumulation ORDER is observable in the result's low bits — exactly
// what the bit-for-bit determinism check needs. The computation depends
// only on (task, t, y), never on the lane or executing thread.
struct StressKernel {
  exec::TaskTable table;
  std::vector<std::uint32_t> iters;
  std::uint32_t n_state = 0;
  std::uint32_t throw_task = kNoThrow;
  exec::RhsKernel kernel;

  static void task_fn(void* ctx, std::size_t /*lane*/, std::uint32_t task,
                      double t, const double* y, double* ydot) {
    auto* k = static_cast<StressKernel*>(ctx);
    if (task == k->throw_task) {
      throw std::runtime_error("stress task exploded");
    }
    const exec::TaskMeta& meta = k->table.tasks[task];
    double acc = t + static_cast<double>(task) * 0.0625;
    for (std::uint32_t i = 0; i < k->iters[task]; ++i) {
      acc += std::sin(y[(task + i) % k->n_state] + acc * 1e-3);
    }
    for (std::uint32_t slot : meta.out_slots) {
      ydot[slot] += acc * static_cast<double>(slot + 1);
    }
  }

  static void eval_fn(void* ctx, double t, const double* y, double* ydot) {
    auto* k = static_cast<StressKernel*>(ctx);
    for (std::uint32_t s = 0; s < k->n_state; ++s) {
      ydot[s] = 0.0;
    }
    for (std::uint32_t task = 0; task < k->table.size(); ++task) {
      task_fn(ctx, 0, task, t, y, ydot);
    }
  }
};

std::unique_ptr<StressKernel> make_stress(std::size_t n_tasks,
                                          std::uint32_t n_state,
                                          std::uint64_t seed,
                                          std::size_t lanes,
                                          std::uint32_t max_iters) {
  auto k = std::make_unique<StressKernel>();
  k->n_state = n_state;
  SplitMix64 rng(seed);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    exec::TaskMeta meta;
    // Two slots per task, overlapping the next task's first slot.
    const auto a = static_cast<std::uint32_t>(t % n_state);
    const auto b = static_cast<std::uint32_t>((t + 1) % n_state);
    meta.out_slots = a < b ? std::vector<std::uint32_t>{a, b}
                           : std::vector<std::uint32_t>{b, a};
    meta.in_states = {a, b};
    // Randomized duration, heavy-tailed: a few tasks dominate.
    const std::uint32_t iters =
        1 + static_cast<std::uint32_t>(
                rng.next_double() * rng.next_double() * max_iters);
    k->iters.push_back(iters);
    meta.est_cost = static_cast<double>(iters);
    k->table.tasks.push_back(std::move(meta));
  }
  k->kernel = exec::RhsKernel(exec::Backend::kReference, k.get(),
                              &StressKernel::eval_fn,
                              &StressKernel::task_fn, n_state, n_state,
                              lanes, &k->table, nullptr);
  return k;
}

std::vector<double> start_state(std::uint32_t n_state) {
  std::vector<double> y(n_state);
  for (std::uint32_t i = 0; i < n_state; ++i) {
    y[i] = 0.1 * static_cast<double>(i) - 0.5;
  }
  return y;
}

// Single-threaded reference: accumulate tasks in id order through a
// per-task scratch buffer, mirroring the pool's accumulation structure.
std::vector<double> reference_eval(const StressKernel& k, double t,
                                   std::span<const double> y) {
  std::vector<double> ydot(k.n_state, 0.0);
  std::vector<double> scratch(k.n_state, 0.0);
  for (std::uint32_t task = 0; task < k.table.size(); ++task) {
    for (std::uint32_t slot : k.table.tasks[task].out_slots) {
      scratch[slot] = 0.0;
    }
    StressKernel::task_fn(const_cast<StressKernel*>(&k), 0, task, t,
                          y.data(), scratch.data());
    for (std::uint32_t slot : k.table.tasks[task].out_slots) {
      ydot[slot] += scratch[slot];
    }
  }
  return ydot;
}

sched::Schedule lpt_for(const StressKernel& k, std::size_t workers) {
  std::vector<double> weights;
  for (const exec::TaskMeta& m : k.table.tasks) {
    weights.push_back(m.est_cost);
  }
  return sched::lpt_schedule(weights, workers);
}

TEST(RuntimeStress, BitForBitAcrossWorkerCountsAndModes) {
  const auto k = make_stress(64, 24, /*seed=*/42, /*lanes=*/16,
                             /*max_iters=*/2000);
  const auto y = start_state(k->n_state);
  const std::vector<double> ref0 = reference_eval(*k, 0.0, y);
  const std::vector<double> ref1 = reference_eval(*k, 0.25, y);

  for (const bool stealing : {false, true}) {
    for (const std::size_t workers : {1u, 2u, 3u, 4u, 8u, 16u}) {
      WorkerPool::Options opts;
      opts.num_workers = workers;
      opts.stealing = stealing;
      WorkerPool pool(k->kernel, opts);
      pool.set_schedule(lpt_for(*k, workers));
      std::vector<double> got(k->n_state);
      for (int round = 0; round < 3; ++round) {
        const double t = round == 1 ? 0.25 : 0.0;
        const std::vector<double>& ref = round == 1 ? ref1 : ref0;
        pool.eval(t, y, got);
        for (std::uint32_t i = 0; i < k->n_state; ++i) {
          // EXPECT_EQ on double: exact, bit-for-bit comparison.
          EXPECT_EQ(got[i], ref[i])
              << "workers=" << workers << " stealing=" << stealing
              << " round=" << round << " slot=" << i;
        }
      }
    }
  }
}

TEST(RuntimeStress, RandomSeedsSweep) {
  for (const std::uint64_t seed : {7ull, 1234ull, 987654321ull}) {
    const auto k = make_stress(48, 16, seed, /*lanes=*/8,
                               /*max_iters=*/1200);
    const auto y = start_state(k->n_state);
    const std::vector<double> ref = reference_eval(*k, 1.5, y);
    WorkerPool::Options opts;
    opts.num_workers = 1 + seed % 8;
    opts.stealing = true;
    WorkerPool pool(k->kernel, opts);
    pool.set_schedule(lpt_for(*k, opts.num_workers));
    std::vector<double> got(k->n_state);
    pool.eval(1.5, y, got);
    EXPECT_EQ(got, ref) << "seed=" << seed;
  }
}

TEST(RuntimeStress, StealsHappenUnderPathologicalImbalance) {
  obs::set_enabled(true);
  const auto k = make_stress(48, 16, /*seed=*/3, /*lanes=*/4,
                             /*max_iters=*/30000);
  const auto y = start_state(k->n_state);
  const std::vector<double> ref = reference_eval(*k, 0.0, y);

  WorkerPool::Options opts;
  opts.num_workers = 4;
  opts.stealing = true;
  WorkerPool pool(k->kernel, opts);
  // Pathological seed: everything on worker 0; 1-3 can only steal.
  sched::Schedule s(4);
  for (std::uint32_t t = 0; t < k->table.size(); ++t) {
    s[0].push_back(t);
  }
  pool.set_schedule(s);
  std::vector<double> got(k->n_state);
  pool.eval(0.0, y, got);
  EXPECT_EQ(got, ref);
  EXPECT_GT(pool.tasks_stolen(), 0u)
      << "idle workers never stole from the loaded victim";
}

TEST(RuntimeStress, StolenTimingsFeedSemiDynamicLpt) {
  const auto k = make_stress(32, 12, /*seed=*/11, /*lanes=*/4,
                             /*max_iters=*/1500);
  const auto y = start_state(k->n_state);
  const std::vector<double> ref = reference_eval(*k, 0.0, y);

  ParallelRhsOptions opts;
  opts.pool.num_workers = 4;
  opts.pool.stealing = true;
  opts.sched.reschedule_period = 2;
  ParallelRhs rhs(k->kernel, opts);
  std::vector<double> got(k->n_state);
  const std::size_t initial = rhs.num_reschedules();
  for (int i = 0; i < 8; ++i) {
    rhs.eval(0.0, y, got);
    EXPECT_EQ(got, ref) << "call " << i;
  }
  // Measured (possibly stolen) task times drove schedule rebuilds.
  EXPECT_EQ(rhs.num_reschedules(), initial + 4);
}

TEST(RuntimeStress, WorkerExceptionPropagatesAndPoolSurvives) {
  for (const bool stealing : {false, true}) {
    const auto k = make_stress(24, 8, /*seed=*/5, /*lanes=*/4,
                               /*max_iters=*/200);
    const auto y = start_state(k->n_state);
    const std::vector<double> ref = reference_eval(*k, 0.0, y);
    WorkerPool::Options opts;
    opts.num_workers = 4;
    opts.stealing = stealing;
    WorkerPool pool(k->kernel, opts);
    pool.set_schedule(lpt_for(*k, 4));
    std::vector<double> got(k->n_state);

    k->throw_task = 13;
    EXPECT_THROW(pool.eval(0.0, y, got), std::runtime_error)
        << "stealing=" << stealing;

    // The pool must stay usable after the failed epoch...
    k->throw_task = kNoThrow;
    pool.eval(0.0, y, got);
    EXPECT_EQ(got, ref) << "stealing=" << stealing;

    // ...and throwing again right before destruction must not hang the
    // destructor (the old code joined without signaling shutdown).
    k->throw_task = 13;
    EXPECT_THROW(pool.eval(0.0, y, got), std::runtime_error);
  }
}

TEST(RuntimeStress, MessageCountsAreDeterministicUnderStealing) {
  const auto k = make_stress(40, 16, /*seed=*/21, /*lanes=*/8,
                             /*max_iters=*/500);
  const auto y = start_state(k->n_state);
  for (const std::size_t workers : {2u, 5u}) {
    WorkerPool::Options opts;
    opts.num_workers = workers;
    opts.stealing = true;
    WorkerPool pool(k->kernel, opts);
    pool.set_schedule(lpt_for(*k, workers));
    std::vector<double> got(k->n_state);
    pool.stats().reset();
    pool.eval(0.0, y, got);
    // Per worker: supervisor send + worker receive + worker (completion)
    // send + supervisor receive — regardless of who stole what.
    EXPECT_EQ(pool.stats().messages.load(), 4 * workers);
  }
}

TEST(RuntimeStress, StealingHonorsEnvDefault) {
  // The option default is captured from OMX_POOL_STEALING at Options
  // construction; unset in the test environment means disabled.
  WorkerPool::Options opts;
  EXPECT_EQ(opts.stealing, WorkerPool::stealing_env_default());
}

TEST(RuntimeStress, RecorderConcurrentWritersAndReaders) {
  // Flight-recorder race gate (runs under TSan via the RuntimeStress
  // filter): 8 writer threads hammer small rings to overflow while a
  // reader concurrently snapshots events() and dropped(). record() must
  // never block and every event must land exactly once or be counted as
  // dropped.
  constexpr std::size_t kCapacity = 1024;
  constexpr int kWriters = 8;
  constexpr int kRecordsPerWriter = 10000;
  obs::Recorder rec(kCapacity);
  rec.start();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::vector<obs::StepEvent> snap = rec.events();
      // A concurrent snapshot sees a time-sorted prefix of each ring.
      for (std::size_t i = 1; i < snap.size(); ++i) {
        ASSERT_LE(snap[i - 1].when_ns, snap[i].when_ns);
      }
      (void)rec.dropped();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        obs::StepEvent ev;
        ev.kind = obs::StepEventKind::kStepAccepted;
        ev.method = "bdf";
        ev.lane = static_cast<std::uint32_t>(w);
        ev.t = i;
        rec.record(ev);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  done.store(true, std::memory_order_relaxed);
  reader.join();
  rec.stop();

  // Accounting is exact: each writer fills its ring, then drops.
  EXPECT_EQ(rec.events().size(), kWriters * kCapacity);
  EXPECT_EQ(rec.dropped(),
            static_cast<std::uint64_t>(kWriters) *
                (kRecordsPerWriter - kCapacity));
}

}  // namespace
}  // namespace omx::runtime
