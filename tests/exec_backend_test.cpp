// Differential tests for the execution backends (exec::RhsKernel): the
// runtime-compiled native kernel must reproduce the tape interpreter and
// the tree-walking reference evaluator on every bundled model, task by
// task and end to end, and must degrade to the interpreter (never fail)
// when the toolchain is unavailable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/parallel_rhs.hpp"

namespace omx::exec {
namespace {

pipeline::KernelOptions test_kernel_opts() {
  pipeline::KernelOptions ko;
  ko.native.cache_dir =
      (std::filesystem::temp_directory_path() / "omx-test-native-cache")
          .string();
  return ko;
}

std::vector<double> start_state(const pipeline::CompiledModel& cm) {
  std::vector<double> y(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y[i] = cm.flat->states()[i].start;
  }
  return y;
}

/// Evaluates the model through every backend at the start state and a
/// perturbed state and checks agreement to 1e-12 (relative).
void expect_backends_agree(const pipeline::CompiledModel& cm) {
  const KernelInstance ref = cm.make_kernel(Backend::kReference);
  const KernelInstance interp = cm.make_kernel(Backend::kInterp);
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }

  std::vector<double> y = start_state(cm);
  for (int trial = 0; trial < 2; ++trial) {
    std::vector<double> a(cm.n()), b(cm.n()), c(cm.n());
    ref.kernel()(0.1, y, a);
    interp.kernel()(0.1, y, b);
    native.kernel()(0.1, y, c);
    for (std::size_t i = 0; i < cm.n(); ++i) {
      const double scale = std::max(1.0, std::fabs(a[i]));
      EXPECT_NEAR(c[i], b[i], 1e-12 * scale) << "native vs interp, slot "
                                             << i;
      EXPECT_NEAR(c[i], a[i], 1e-12 * scale) << "native vs reference, slot "
                                             << i;
    }
    // Second trial: perturb away from the (often symmetric) start state.
    for (std::size_t i = 0; i < cm.n(); ++i) {
      y[i] += 1e-3 * static_cast<double>(i % 7) + 1e-4;
    }
  }
}

TEST(NativeBackend, MatchesInterpAndReferenceOnOscillator) {
  expect_backends_agree(pipeline::compile_model(models::build_oscillator));
}

TEST(NativeBackend, MatchesInterpAndReferenceOnBearing2d) {
  expect_backends_agree(pipeline::compile_model([](expr::Context& ctx) {
    models::BearingConfig cfg;
    cfg.n_rollers = 5;
    return models::build_bearing(ctx, cfg);
  }));
}

TEST(NativeBackend, MatchesInterpAndReferenceOnHydroPlant) {
  expect_backends_agree(pipeline::compile_model(models::build_hydro));
}

TEST(NativeBackend, MatchesInterpAndReferenceOnHeat1d) {
  expect_backends_agree(pipeline::compile_model([](expr::Context& ctx) {
    models::Heat1dConfig cfg;
    cfg.n_cells = 24;
    return models::build_heat1d(ctx, cfg);
  }));
}

TEST(NativeBackend, TaskCompositionReproducesSerialEval) {
  // run_task has accumulate semantics: composing every task over a
  // pre-zeroed ydot must reproduce the whole-system eval (§3.2).
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }
  const RhsKernel& k = native.kernel();
  ASSERT_TRUE(k.has_tasks());
  ASSERT_EQ(k.num_tasks(), cm.plan.tasks.size());

  const std::vector<double> y = start_state(cm);
  std::vector<double> whole(cm.n()), composed(cm.n(), 0.0);
  k(0.05, y, whole);
  for (std::uint32_t t = 0; t < k.num_tasks(); ++t) {
    k.run_task(/*lane=*/0, t, 0.05, y.data(), composed.data());
  }
  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_NEAR(composed[i], whole[i],
                1e-12 * std::max(1.0, std::fabs(whole[i])))
        << "slot " << i;
  }
}

TEST(NativeBackend, WorkerPoolComposesNativeTasks) {
  // The full parallel path over native code: supervisor + workers
  // marshalling per-task outputs must match the serial native eval.
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }

  runtime::ParallelRhsOptions opts;
  opts.pool.num_workers = 3;
  runtime::ParallelRhs par(native.kernel(), opts);

  const std::vector<double> y = start_state(cm);
  std::vector<double> serial(cm.n()), parallel(cm.n());
  native.kernel()(0.0, y, serial);
  par.eval(0.0, y, parallel);
  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_NEAR(parallel[i], serial[i],
                1e-12 * std::max(1.0, std::fabs(serial[i])))
        << "slot " << i;
  }
}

TEST(NativeBackend, SecondBuildHitsCache) {
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const pipeline::KernelOptions ko = test_kernel_opts();
  const KernelInstance first = cm.make_kernel(Backend::kNative, ko);
  if (first.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }
  obs::set_enabled(true);
  const auto hits_before = obs::Registry::global()
                               .counter("backend.native.cache_hits")
                               .value();
  const KernelInstance second = cm.make_kernel(Backend::kNative, ko);
  EXPECT_EQ(second.backend(), Backend::kNative);
  EXPECT_GT(obs::Registry::global()
                .counter("backend.native.cache_hits")
                .value(),
            hits_before);
}

TEST(NativeBackend, ForceFallbackDegradesToInterp) {
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  pipeline::KernelOptions ko = test_kernel_opts();
  ko.native.force_fallback = true;
  const KernelInstance k = cm.make_kernel(Backend::kNative, ko);
  EXPECT_EQ(k.backend(), Backend::kInterp);

  // The fallback kernel still evaluates correctly.
  const std::vector<double> y = start_state(cm);
  std::vector<double> ydot(cm.n());
  k.kernel()(0.0, y, ydot);
  EXPECT_DOUBLE_EQ(ydot[0], y[1]);
  EXPECT_DOUBLE_EQ(ydot[1], -y[0]);
}

TEST(NativeBackend, DisableEnvDegradesToInterp) {
  ::setenv("OMX_NATIVE_DISABLE", "1", 1);
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const KernelInstance k =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  ::unsetenv("OMX_NATIVE_DISABLE");
  EXPECT_EQ(k.backend(), Backend::kInterp);
}

TEST(Kernels, ProblemCarriesKernelArity) {
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const KernelInstance k = cm.make_kernel(Backend::kInterp);
  ode::Problem p = cm.make_problem(k, 0.0, 1.0);
  EXPECT_EQ(p.rhs_arity, cm.n());
  p.validate();
  p.n = cm.n() + 1;  // desync: validate must reject the arity mismatch
  p.y0.push_back(0.0);
  EXPECT_THROW(p.validate(), omx::Error);
}

TEST(Kernels, SolveThroughEveryBackendAgrees) {
  // End-to-end: the same integration through reference, interp and
  // native kernels lands on the same trajectory.
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  ode::SolverOptions o;
  o.dt = 1e-3;
  o.record_every = 1000;

  std::vector<ode::Solution> sols;
  for (Backend b : {Backend::kReference, Backend::kInterp, Backend::kNative}) {
    const KernelInstance k = cm.make_kernel(b, test_kernel_opts());
    ode::Problem p = cm.make_problem(k, 0.0, 6.0);
    sols.push_back(ode::solve(p, ode::Method::kRk4, o));
  }
  for (const ode::Solution& s : sols) {
    EXPECT_NEAR(s.final_state()[0], std::cos(6.0), 1e-6);
  }
  EXPECT_NEAR(sols[1].final_state()[0], sols[0].final_state()[0], 1e-12);
  EXPECT_NEAR(sols[2].final_state()[0], sols[0].final_state()[0], 1e-12);
}

// ------------------------------------------------ batched (SoA) kernels
//
// Differential suite for the ensemble execution engine: every backend's
// eval_batch must agree with the scalar reference evaluator lane by
// lane, and a lane's result must not depend on the batch it rides in.

/// nb perturbed start states with distinct per-lane times, SoA-packed.
struct BatchFixture {
  std::size_t nb = 0;
  std::vector<double> ts;
  std::vector<double> y_soa;                   // n x nb
  std::vector<std::vector<double>> lane_y;     // per-lane copies

  BatchFixture(const pipeline::CompiledModel& cm, std::size_t lanes)
      : nb(lanes), ts(lanes) {
    const std::size_t n = cm.n();
    y_soa.resize(n * nb);
    for (std::size_t j = 0; j < nb; ++j) {
      ts[j] = 0.01 + 0.05 * static_cast<double>(j);
      std::vector<double> y = start_state(cm);
      for (std::size_t i = 0; i < n; ++i) {
        y[i] += 1e-3 * static_cast<double>((i + 3 * j) % 7) +
                1e-4 * static_cast<double>(j);
        y_soa[i * nb + j] = y[i];
      }
      lane_y.push_back(std::move(y));
    }
  }
};

void expect_batched_backends_agree(const pipeline::CompiledModel& cm) {
  const KernelInstance ref = cm.make_kernel(Backend::kReference);
  const KernelInstance interp = cm.make_kernel(Backend::kInterp);
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  ASSERT_TRUE(ref.kernel().has_batch());
  ASSERT_TRUE(interp.kernel().has_batch());

  const std::size_t n = cm.n();
  const BatchFixture fx(cm, 6);
  std::vector<double> br(n * fx.nb), bi(n * fx.nb), bn(n * fx.nb);
  ref.kernel().eval_batch(0, fx.nb, fx.ts.data(), fx.y_soa.data(),
                          br.data());
  interp.kernel().eval_batch(0, fx.nb, fx.ts.data(), fx.y_soa.data(),
                             bi.data());
  const bool have_native = native.backend() == Backend::kNative;
  if (have_native) {
    ASSERT_TRUE(native.kernel().has_batch());
    native.kernel().eval_batch(0, fx.nb, fx.ts.data(), fx.y_soa.data(),
                               bn.data());
  }

  for (std::size_t j = 0; j < fx.nb; ++j) {
    // Oracle: a scalar reference eval of this lane alone.
    std::vector<double> expected(n), scalar_interp(n);
    ref.kernel()(fx.ts[j], fx.lane_y[j], expected);
    interp.kernel()(fx.ts[j], fx.lane_y[j], scalar_interp);
    for (std::size_t i = 0; i < n; ++i) {
      const double scale = std::max(1.0, std::fabs(expected[i]));
      EXPECT_NEAR(br[i * fx.nb + j], expected[i], 1e-12 * scale)
          << "reference batch, lane " << j << " slot " << i;
      EXPECT_NEAR(bi[i * fx.nb + j], expected[i], 1e-12 * scale)
          << "interp batch, lane " << j << " slot " << i;
      // The batched interpreter runs the identical instruction sequence
      // per lane: bitwise equal to the scalar interpreter, not just close.
      EXPECT_EQ(bi[i * fx.nb + j], scalar_interp[i])
          << "interp batch not bitwise, lane " << j << " slot " << i;
      if (have_native) {
        EXPECT_NEAR(bn[i * fx.nb + j], expected[i], 1e-12 * scale)
            << "native batch, lane " << j << " slot " << i;
      }
    }
  }
}

TEST(BatchedKernels, MatchScalarReferenceOnOscillator) {
  expect_batched_backends_agree(
      pipeline::compile_model(models::build_oscillator));
}

TEST(BatchedKernels, MatchScalarReferenceOnBearing2d) {
  expect_batched_backends_agree(pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 5;
        return models::build_bearing(ctx, cfg);
      }));
}

TEST(BatchedKernels, MatchScalarReferenceOnHeat1d) {
  expect_batched_backends_agree(pipeline::compile_model(
      [](expr::Context& ctx) {
        models::Heat1dConfig cfg;
        cfg.n_cells = 24;
        return models::build_heat1d(ctx, cfg);
      }));
}

TEST(BatchedKernels, LaneResultsInvariantUnderRepacking) {
  // Mixed scenario lifetimes: after some lanes retire mid-sweep the
  // ensemble driver compacts the batch; the surviving lanes' results
  // must be bitwise unchanged in the narrower batch.
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  const std::size_t n = cm.n();
  const BatchFixture fx(cm, 6);
  const std::vector<std::size_t> survivors = {0, 2, 5};  // 1, 3, 4 retired

  std::vector<KernelInstance> kernels;
  kernels.push_back(cm.make_kernel(Backend::kInterp));
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() == Backend::kNative) {
    kernels.push_back(native);
  }
  for (const KernelInstance& k : kernels) {
    std::vector<double> full(n * fx.nb);
    k.kernel().eval_batch(0, fx.nb, fx.ts.data(), fx.y_soa.data(),
                          full.data());

    const std::size_t nb2 = survivors.size();
    std::vector<double> ts2(nb2), y2(n * nb2), out2(n * nb2);
    for (std::size_t j = 0; j < nb2; ++j) {
      ts2[j] = fx.ts[survivors[j]];
      for (std::size_t i = 0; i < n; ++i) {
        y2[i * nb2 + j] = fx.y_soa[i * fx.nb + survivors[j]];
      }
    }
    k.kernel().eval_batch(0, nb2, ts2.data(), y2.data(), out2.data());
    for (std::size_t j = 0; j < nb2; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out2[i * nb2 + j], full[i * fx.nb + survivors[j]])
            << to_string(k.backend()) << " lane " << survivors[j]
            << " slot " << i;
      }
    }
  }
}

TEST(BatchedKernels, BatchedTaskCompositionReproducesEvalBatch) {
  // run_task_batch has the same accumulate semantics as run_task:
  // composing every task over pre-zeroed SoA output reproduces
  // eval_batch.
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  const std::size_t n = cm.n();
  const BatchFixture fx(cm, 4);
  std::vector<KernelInstance> kernels;
  kernels.push_back(cm.make_kernel(Backend::kInterp));
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() == Backend::kNative) {
    kernels.push_back(native);
  }
  for (const KernelInstance& ki : kernels) {
    const RhsKernel& k = ki.kernel();
    ASSERT_TRUE(k.has_batch_tasks());
    std::vector<double> whole(n * fx.nb), composed(n * fx.nb, 0.0);
    k.eval_batch(0, fx.nb, fx.ts.data(), fx.y_soa.data(), whole.data());
    for (std::uint32_t t = 0; t < k.num_tasks(); ++t) {
      k.run_task_batch(0, t, fx.nb, fx.ts.data(), fx.y_soa.data(),
                       composed.data());
    }
    for (std::size_t i = 0; i < n * fx.nb; ++i) {
      EXPECT_NEAR(composed[i], whole[i],
                  1e-12 * std::max(1.0, std::fabs(whole[i])))
          << to_string(ki.backend()) << " flat index " << i;
    }
  }
}

TEST(Ensemble, AgreesAcrossBackendsAndIsStableAcrossWorkerCounts) {
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  const std::size_t n = cm.n();

  ode::EnsembleSpec spec;
  for (std::size_t s = 0; s < 6; ++s) {
    std::vector<double> y = start_state(cm);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += 1e-3 * static_cast<double>((i + s) % 5);
    }
    spec.initial_states.push_back(std::move(y));
  }
  spec.workers = 2;
  spec.max_batch = 4;

  ode::SolverOptions o;
  o.record_every = 1000;
  // Tight tolerance keeps the backend-rounding divergence (amplified by
  // the bearing's contact dynamics) well below the comparison bar.
  o.tol.rtol = 1e-10;
  o.tol.atol = 1e-12;

  pipeline::KernelOptions ko = test_kernel_opts();
  ko.lanes = 4;

  // Cross-backend agreement per scenario. The kernels agree to 1e-12 per
  // RHS call (BatchedKernels.* above), but adaptive step control turns
  // last-bit RHS differences into different accept/reject sequences, so
  // integrated trajectories only agree to the solver's own accuracy.
  std::vector<ode::EnsembleResult> results;
  std::vector<Backend> backends = {Backend::kReference, Backend::kInterp};
  if (cm.make_kernel(Backend::kNative, ko).backend() == Backend::kNative) {
    backends.push_back(Backend::kNative);
  }
  for (Backend b : backends) {
    const KernelInstance k = cm.make_kernel(b, ko);
    const ode::Problem p = cm.make_problem(k, 0.0, 0.01);
    results.push_back(
        ode::solve_ensemble(p, ode::Method::kDopri5, o, spec));
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    for (std::size_t s = 0; s < spec.initial_states.size(); ++s) {
      const auto a = results[0].solutions[s].final_state();
      const auto b = results[r].solutions[s].final_state();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(b[i], a[i], 1e-4 * std::max(1.0, std::fabs(a[i])))
            << to_string(backends[r]) << " scenario " << s << " slot " << i;
      }
    }
  }

  // Bit-for-bit stability across worker counts and batch widths within
  // one backend: scenario trajectories are lane-independent, so the
  // packing/scheduling must not change a single bit.
  const KernelInstance k = cm.make_kernel(Backend::kInterp, ko);
  const ode::Problem p = cm.make_problem(k, 0.0, 0.01);
  ode::EnsembleSpec base = spec;
  base.workers = 1;
  base.max_batch = 1;
  const ode::EnsembleResult golden =
      ode::solve_ensemble(p, ode::Method::kDopri5, o, base);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t batch : {std::size_t{3}, std::size_t{8}}) {
      ode::EnsembleSpec v = spec;
      v.workers = workers;
      v.max_batch = batch;
      const ode::EnsembleResult got =
          ode::solve_ensemble(p, ode::Method::kDopri5, o, v);
      for (std::size_t s = 0; s < spec.initial_states.size(); ++s) {
        const ode::Solution& ga = golden.solutions[s];
        const ode::Solution& gb = got.solutions[s];
        ASSERT_EQ(gb.size(), ga.size()) << "scenario " << s;
        for (std::size_t i = 0; i < ga.size(); ++i) {
          EXPECT_EQ(gb.time(i), ga.time(i));
          const auto ya = ga.state(i);
          const auto yb = gb.state(i);
          for (std::size_t q = 0; q < n; ++q) {
            EXPECT_EQ(yb[q], ya[q])
                << "workers=" << workers << " batch=" << batch
                << " scenario " << s << " step " << i << " slot " << q;
          }
        }
        EXPECT_EQ(gb.stats.steps, ga.stats.steps);
        EXPECT_EQ(gb.stats.rhs_calls, ga.stats.rhs_calls);
      }
    }
  }
}

TEST(Kernels, InterpLanesAreIndependent) {
  // Distinct lanes own private register files: running the same task on
  // two lanes back-to-back gives identical accumulations.
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  pipeline::KernelOptions ko;
  ko.lanes = 2;
  const KernelInstance k = cm.make_kernel(Backend::kInterp, ko);
  ASSERT_GE(k.kernel().num_lanes(), 2u);

  const std::vector<double> y = start_state(cm);
  std::vector<double> a(cm.n(), 0.0), b(cm.n(), 0.0);
  for (std::uint32_t t = 0; t < k.kernel().num_tasks(); ++t) {
    k.kernel().run_task(0, t, 0.0, y.data(), a.data());
    k.kernel().run_task(1, t, 0.0, y.data(), b.data());
  }
  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(NativeBackend, ConcurrentBuildersCompileEachModuleOnce) {
  // The .so cache is shared across processes (omxd executors, parallel
  // test shards); the per-key lockfile must serialize builders so
  // racing compiles of the same model neither clobber each other's
  // artifacts nor compile redundantly. flock on distinct fds excludes
  // within one process too, so racing threads exercise the same path.
  namespace fs = std::filesystem;
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  obs::Counter& compiles =
      obs::Registry::global().counter("backend.native.compiles");

  // Calibrate: how many modules does one cold build of this model
  // compile? (The kernel may carry scalar + batch entry points.)
  const fs::path calib_dir =
      fs::temp_directory_path() / "omx-test-lock-calib";
  fs::remove_all(calib_dir);
  pipeline::KernelOptions ko;
  ko.native.cache_dir = calib_dir.string();
  const std::uint64_t before_calib = compiles.value();
  const KernelInstance probe = cm.make_kernel(Backend::kNative, ko);
  if (probe.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }
  const std::uint64_t per_build = compiles.value() - before_calib;
  ASSERT_GT(per_build, 0u);

  const fs::path race_dir =
      fs::temp_directory_path() / "omx-test-lock-race";
  fs::remove_all(race_dir);
  ko.native.cache_dir = race_dir.string();
  const std::uint64_t before_race = compiles.value();
  constexpr int kBuilders = 4;
  std::vector<KernelInstance> kernels;
  kernels.reserve(kBuilders);
  std::mutex kernels_mutex;
  std::vector<std::thread> threads;
  threads.reserve(kBuilders);
  for (int i = 0; i < kBuilders; ++i) {
    threads.emplace_back([&] {
      KernelInstance k = cm.make_kernel(Backend::kNative, ko);
      const std::lock_guard<std::mutex> lock(kernels_mutex);
      kernels.push_back(std::move(k));
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Exactly one builder compiled; the rest blocked on the lock and then
  // hit the published artifact.
  EXPECT_EQ(compiles.value() - before_race, per_build);
  const std::vector<double> y = start_state(cm);
  std::vector<double> want(cm.n());
  probe.kernel()(0.1, y, want);
  for (const KernelInstance& k : kernels) {
    ASSERT_EQ(k.backend(), Backend::kNative);
    std::vector<double> got(cm.n());
    k.kernel()(0.1, y, got);
    for (std::size_t i = 0; i < cm.n(); ++i) {
      EXPECT_DOUBLE_EQ(got[i], want[i]);
    }
  }
}

}  // namespace
}  // namespace omx::exec
