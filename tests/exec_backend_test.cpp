// Differential tests for the execution backends (exec::RhsKernel): the
// runtime-compiled native kernel must reproduce the tape interpreter and
// the tree-walking reference evaluator on every bundled model, task by
// task and end to end, and must degrade to the interpreter (never fail)
// when the toolchain is unavailable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/parallel_rhs.hpp"

namespace omx::exec {
namespace {

pipeline::KernelOptions test_kernel_opts() {
  pipeline::KernelOptions ko;
  ko.native.cache_dir =
      (std::filesystem::temp_directory_path() / "omx-test-native-cache")
          .string();
  return ko;
}

std::vector<double> start_state(const pipeline::CompiledModel& cm) {
  std::vector<double> y(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y[i] = cm.flat->states()[i].start;
  }
  return y;
}

/// Evaluates the model through every backend at the start state and a
/// perturbed state and checks agreement to 1e-12 (relative).
void expect_backends_agree(const pipeline::CompiledModel& cm) {
  const KernelInstance ref = cm.make_kernel(Backend::kReference);
  const KernelInstance interp = cm.make_kernel(Backend::kInterp);
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }

  std::vector<double> y = start_state(cm);
  for (int trial = 0; trial < 2; ++trial) {
    std::vector<double> a(cm.n()), b(cm.n()), c(cm.n());
    ref.kernel()(0.1, y, a);
    interp.kernel()(0.1, y, b);
    native.kernel()(0.1, y, c);
    for (std::size_t i = 0; i < cm.n(); ++i) {
      const double scale = std::max(1.0, std::fabs(a[i]));
      EXPECT_NEAR(c[i], b[i], 1e-12 * scale) << "native vs interp, slot "
                                             << i;
      EXPECT_NEAR(c[i], a[i], 1e-12 * scale) << "native vs reference, slot "
                                             << i;
    }
    // Second trial: perturb away from the (often symmetric) start state.
    for (std::size_t i = 0; i < cm.n(); ++i) {
      y[i] += 1e-3 * static_cast<double>(i % 7) + 1e-4;
    }
  }
}

TEST(NativeBackend, MatchesInterpAndReferenceOnOscillator) {
  expect_backends_agree(pipeline::compile_model(models::build_oscillator));
}

TEST(NativeBackend, MatchesInterpAndReferenceOnBearing2d) {
  expect_backends_agree(pipeline::compile_model([](expr::Context& ctx) {
    models::BearingConfig cfg;
    cfg.n_rollers = 5;
    return models::build_bearing(ctx, cfg);
  }));
}

TEST(NativeBackend, MatchesInterpAndReferenceOnHydroPlant) {
  expect_backends_agree(pipeline::compile_model(models::build_hydro));
}

TEST(NativeBackend, MatchesInterpAndReferenceOnHeat1d) {
  expect_backends_agree(pipeline::compile_model([](expr::Context& ctx) {
    models::Heat1dConfig cfg;
    cfg.n_cells = 24;
    return models::build_heat1d(ctx, cfg);
  }));
}

TEST(NativeBackend, TaskCompositionReproducesSerialEval) {
  // run_task has accumulate semantics: composing every task over a
  // pre-zeroed ydot must reproduce the whole-system eval (§3.2).
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }
  const RhsKernel& k = native.kernel();
  ASSERT_TRUE(k.has_tasks());
  ASSERT_EQ(k.num_tasks(), cm.plan.tasks.size());

  const std::vector<double> y = start_state(cm);
  std::vector<double> whole(cm.n()), composed(cm.n(), 0.0);
  k(0.05, y, whole);
  for (std::uint32_t t = 0; t < k.num_tasks(); ++t) {
    k.run_task(/*lane=*/0, t, 0.05, y.data(), composed.data());
  }
  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_NEAR(composed[i], whole[i],
                1e-12 * std::max(1.0, std::fabs(whole[i])))
        << "slot " << i;
  }
}

TEST(NativeBackend, WorkerPoolComposesNativeTasks) {
  // The full parallel path over native code: supervisor + workers
  // marshalling per-task outputs must match the serial native eval.
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  const KernelInstance native =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  if (native.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }

  runtime::ParallelRhsOptions opts;
  opts.pool.num_workers = 3;
  runtime::ParallelRhs par(native.kernel(), opts);

  const std::vector<double> y = start_state(cm);
  std::vector<double> serial(cm.n()), parallel(cm.n());
  native.kernel()(0.0, y, serial);
  par.eval(0.0, y, parallel);
  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_NEAR(parallel[i], serial[i],
                1e-12 * std::max(1.0, std::fabs(serial[i])))
        << "slot " << i;
  }
}

TEST(NativeBackend, SecondBuildHitsCache) {
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const pipeline::KernelOptions ko = test_kernel_opts();
  const KernelInstance first = cm.make_kernel(Backend::kNative, ko);
  if (first.backend() != Backend::kNative) {
    GTEST_SKIP() << "no host compiler; native backend unavailable";
  }
  obs::set_enabled(true);
  const auto hits_before = obs::Registry::global()
                               .counter("backend.native.cache_hits")
                               .value();
  const KernelInstance second = cm.make_kernel(Backend::kNative, ko);
  EXPECT_EQ(second.backend(), Backend::kNative);
  EXPECT_GT(obs::Registry::global()
                .counter("backend.native.cache_hits")
                .value(),
            hits_before);
}

TEST(NativeBackend, ForceFallbackDegradesToInterp) {
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  pipeline::KernelOptions ko = test_kernel_opts();
  ko.native.force_fallback = true;
  const KernelInstance k = cm.make_kernel(Backend::kNative, ko);
  EXPECT_EQ(k.backend(), Backend::kInterp);

  // The fallback kernel still evaluates correctly.
  const std::vector<double> y = start_state(cm);
  std::vector<double> ydot(cm.n());
  k.kernel()(0.0, y, ydot);
  EXPECT_DOUBLE_EQ(ydot[0], y[1]);
  EXPECT_DOUBLE_EQ(ydot[1], -y[0]);
}

TEST(NativeBackend, DisableEnvDegradesToInterp) {
  ::setenv("OMX_NATIVE_DISABLE", "1", 1);
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const KernelInstance k =
      cm.make_kernel(Backend::kNative, test_kernel_opts());
  ::unsetenv("OMX_NATIVE_DISABLE");
  EXPECT_EQ(k.backend(), Backend::kInterp);
}

TEST(Kernels, ProblemCarriesKernelArity) {
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const KernelInstance k = cm.make_kernel(Backend::kInterp);
  ode::Problem p = cm.make_problem(k, 0.0, 1.0);
  EXPECT_EQ(p.rhs_arity, cm.n());
  p.validate();
  p.n = cm.n() + 1;  // desync: validate must reject the arity mismatch
  p.y0.push_back(0.0);
  EXPECT_THROW(p.validate(), omx::Error);
}

TEST(Kernels, SolveThroughEveryBackendAgrees) {
  // End-to-end: the same integration through reference, interp and
  // native kernels lands on the same trajectory.
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  ode::SolverOptions o;
  o.dt = 1e-3;
  o.record_every = 1000;

  std::vector<ode::Solution> sols;
  for (Backend b : {Backend::kReference, Backend::kInterp, Backend::kNative}) {
    const KernelInstance k = cm.make_kernel(b, test_kernel_opts());
    ode::Problem p = cm.make_problem(k, 0.0, 6.0);
    sols.push_back(ode::solve(p, ode::Method::kRk4, o));
  }
  for (const ode::Solution& s : sols) {
    EXPECT_NEAR(s.final_state()[0], std::cos(6.0), 1e-6);
  }
  EXPECT_NEAR(sols[1].final_state()[0], sols[0].final_state()[0], 1e-12);
  EXPECT_NEAR(sols[2].final_state()[0], sols[0].final_state()[0], 1e-12);
}

TEST(Kernels, InterpLanesAreIndependent) {
  // Distinct lanes own private register files: running the same task on
  // two lanes back-to-back gives identical accumulations.
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        models::BearingConfig cfg;
        cfg.n_rollers = 4;
        return models::build_bearing(ctx, cfg);
      });
  pipeline::KernelOptions ko;
  ko.lanes = 2;
  const KernelInstance k = cm.make_kernel(Backend::kInterp, ko);
  ASSERT_GE(k.kernel().num_lanes(), 2u);

  const std::vector<double> y = start_state(cm);
  std::vector<double> a(cm.n(), 0.0), b(cm.n(), 0.0);
  for (std::uint32_t t = 0; t < k.kernel().num_tasks(); ++t) {
    k.kernel().run_task(0, t, 0.0, y.data(), a.data());
    k.kernel().run_task(1, t, 0.0, y.data(), b.data());
  }
  for (std::size_t i = 0; i < cm.n(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace omx::exec
