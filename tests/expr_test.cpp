#include <gtest/gtest.h>

#include <cmath>

#include "omx/expr/context.hpp"
#include "omx/expr/derivative.hpp"
#include "omx/expr/eval.hpp"
#include "omx/expr/printer.hpp"
#include "omx/expr/simplify.hpp"

namespace omx::expr {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Context ctx;

  double eval_with(ExprId e, std::initializer_list<std::pair<const char*,
                                                             double>> binds) {
    Env env;
    for (const auto& [name, v] : binds) {
      env.set(ctx.symbol(name), v);
    }
    return eval(ctx.pool, e, env);
  }
};

TEST_F(ExprTest, HashConsingDeduplicatesStructurally) {
  const Ex a = ctx.var("x") + ctx.var("y");
  const Ex b = ctx.var("x") + ctx.var("y");
  EXPECT_EQ(a.id(), b.id());
  const Ex c = ctx.var("y") + ctx.var("x");  // not commutatively canonical
  EXPECT_NE(a.id(), c.id());
}

TEST_F(ExprTest, ConstantsAreShared) {
  EXPECT_EQ(ctx.lit(2.5).id(), ctx.lit(2.5).id());
  EXPECT_NE(ctx.lit(2.5).id(), ctx.lit(-2.5).id());
  // -0.0 canonicalizes to +0.0.
  EXPECT_EQ(ctx.lit(-0.0).id(), ctx.lit(0.0).id());
}

TEST_F(ExprTest, EvalArithmetic) {
  const Ex e = (ctx.var("x") + 2.0) * ctx.var("y") / (ctx.var("x") - 1.0);
  EXPECT_DOUBLE_EQ(eval_with(e.id(), {{"x", 3.0}, {"y", 4.0}}),
                   (3.0 + 2.0) * 4.0 / (3.0 - 1.0));
}

TEST_F(ExprTest, EvalFunctions) {
  const Ex e = sin(ctx.var("x")) + exp(cos(ctx.var("x")));
  const double x = 0.7;
  EXPECT_DOUBLE_EQ(eval_with(e.id(), {{"x", x}}),
                   std::sin(x) + std::exp(std::cos(x)));
}

TEST_F(ExprTest, EvalMinMaxSignAbs) {
  const Ex e = max(ctx.var("x"), 0.0) * sign(ctx.var("x")) +
               abs(min(ctx.var("x"), ctx.var("y")));
  EXPECT_DOUBLE_EQ(eval_with(e.id(), {{"x", -2.0}, {"y", 5.0}}),
                   0.0 * -1.0 + 2.0);
}

TEST_F(ExprTest, EvalUnboundSymbolThrows) {
  const Ex e = ctx.var("ghost");
  Env env;
  EXPECT_THROW(eval(ctx.pool, e.id(), env), omx::Error);
}

TEST_F(ExprTest, EvalDerNodeThrows) {
  const ExprId d = ctx.der("x").id();
  Env env;
  env.set(ctx.symbol("x"), 1.0);
  EXPECT_THROW(eval(ctx.pool, d, env), omx::Error);
}

TEST_F(ExprTest, FreeSymsDeduplicatedSorted) {
  const Ex e = ctx.var("b") * ctx.var("a") + ctx.var("b") - ctx.lit(3.0);
  std::vector<SymbolId> syms;
  ctx.pool.free_syms(e.id(), syms);
  ASSERT_EQ(syms.size(), 2u);
  EXPECT_TRUE(std::is_sorted(syms.begin(), syms.end()));
}

TEST_F(ExprTest, SubstituteReplacesAllOccurrences) {
  const Ex e = ctx.var("x") * ctx.var("x") + ctx.var("x");
  const ExprId r =
      ctx.pool.substitute(e.id(), ctx.symbol("x"), ctx.lit(3.0).id());
  Env env;
  EXPECT_DOUBLE_EQ(eval(ctx.pool, r, env), 12.0);
}

TEST_F(ExprTest, SubstituteSimultaneous) {
  // Swapping x and y must not cascade.
  const Ex e = ctx.var("x") - ctx.var("y");
  std::unordered_map<SymbolId, ExprId> map{
      {ctx.symbol("x"), ctx.var("y").id()},
      {ctx.symbol("y"), ctx.var("x").id()},
  };
  const ExprId r = ctx.pool.substitute(e.id(), map);
  EXPECT_DOUBLE_EQ(eval_with(r, {{"x", 10.0}, {"y", 4.0}}), 4.0 - 10.0);
}

TEST_F(ExprTest, TreeVsDagOpCounts) {
  // shared = x*y used twice: tree counts it twice, dag once.
  const Ex shared = ctx.var("x") * ctx.var("y");
  const Ex e = shared + shared * shared;
  EXPECT_EQ(ctx.pool.dag_op_count(e.id()), 3u);   // mul, mul, add
  EXPECT_EQ(ctx.pool.tree_op_count(e.id()), 5u);  // 3 muls + add + ... tree
}

TEST_F(ExprTest, DiffPolynomial) {
  // d/dx (x^3 + 2x) = 3x^2 + 2.
  const Ex x = ctx.var("x");
  const Ex e = pow(x, 3.0) + 2.0 * x;
  const ExprId d = differentiate(ctx.pool, e.id(), ctx.symbol("x"));
  EXPECT_NEAR(eval_with(d, {{"x", 2.0}}), 3.0 * 4.0 + 2.0, 1e-12);
}

TEST_F(ExprTest, DiffQuotientAndChain) {
  // d/dx sin(x^2)/x = (2x cos(x^2) * x - sin(x^2)) / x^2.
  const Ex x = ctx.var("x");
  const Ex e = sin(x * x) / x;
  const ExprId d = differentiate(ctx.pool, e.id(), ctx.symbol("x"));
  const double xv = 1.3;
  const double expected = (2.0 * xv * std::cos(xv * xv) * xv -
                           std::sin(xv * xv)) / (xv * xv);
  EXPECT_NEAR(eval_with(d, {{"x", xv}}), expected, 1e-12);
}

TEST_F(ExprTest, DiffOfOtherSymbolIsZero) {
  const ExprId d = differentiate(ctx.pool, ctx.var("y").id(),
                                 ctx.symbol("x"));
  EXPECT_TRUE(ctx.pool.is_const(d, 0.0));
}

TEST_F(ExprTest, DiffGeneralPower) {
  // d/dx x^x = x^x (ln x + 1).
  const Ex x = ctx.var("x");
  const ExprId d = differentiate(ctx.pool, pow(x, x).id(), ctx.symbol("x"));
  const double xv = 2.0;
  EXPECT_NEAR(eval_with(d, {{"x", xv}}),
              std::pow(xv, xv) * (std::log(xv) + 1.0), 1e-12);
}

TEST_F(ExprTest, DiffMinMaxViaAbsIdentity) {
  // d/dx min(x^2, x) at x = 2 is d/dx x = 1; at x = 0.25 is 2x = 0.5.
  const Ex x = ctx.var("x");
  const ExprId d =
      differentiate(ctx.pool, min(x * x, x).id(), ctx.symbol("x"));
  EXPECT_NEAR(eval_with(d, {{"x", 2.0}}), 1.0, 1e-12);
  EXPECT_NEAR(eval_with(d, {{"x", 0.25}}), 0.5, 1e-12);
}

TEST_F(ExprTest, DiffHypotAtan2) {
  const Ex x = ctx.var("x");
  const Ex y = ctx.var("y");
  const ExprId dh =
      differentiate(ctx.pool, hypot(x, y).id(), ctx.symbol("x"));
  EXPECT_NEAR(eval_with(dh, {{"x", 3.0}, {"y", 4.0}}), 3.0 / 5.0, 1e-12);
  const ExprId da =
      differentiate(ctx.pool, atan2(y, x).id(), ctx.symbol("x"));
  // d/dx atan2(y, x) = -y/(x^2+y^2).
  EXPECT_NEAR(eval_with(da, {{"x", 3.0}, {"y", 4.0}}), -4.0 / 25.0, 1e-12);
}

TEST_F(ExprTest, SimplifyConstantFolding) {
  const Ex e = (ctx.lit(2.0) + 3.0) * ctx.lit(4.0);
  EXPECT_TRUE(ctx.pool.is_const(simplify(ctx.pool, e.id()), 20.0));
}

TEST_F(ExprTest, SimplifyIdentities) {
  const Ex x = ctx.var("x");
  EXPECT_EQ(simplify(ctx.pool, (x + 0.0).id()), x.id());
  EXPECT_EQ(simplify(ctx.pool, (x * 1.0).id()), x.id());
  EXPECT_TRUE(ctx.pool.is_const(simplify(ctx.pool, (x * 0.0).id()), 0.0));
  EXPECT_TRUE(ctx.pool.is_const(simplify(ctx.pool, (x - x).id()), 0.0));
  EXPECT_EQ(simplify(ctx.pool, pow(x, 1.0).id()), x.id());
  EXPECT_TRUE(ctx.pool.is_const(simplify(ctx.pool, pow(x, 0.0).id()), 1.0));
  // --x -> x
  EXPECT_EQ(simplify(ctx.pool, (-(-x)).id()), x.id());
}

TEST_F(ExprTest, SimplifyDoesNotDivideByZeroFold) {
  // 0 / x must NOT fold to 0 (x could be 0).
  const Ex e = ctx.lit(0.0) / ctx.var("x");
  const ExprId s = simplify(ctx.pool, e.id());
  EXPECT_FALSE(ctx.pool.is_const(s, 0.0));
}

TEST_F(ExprTest, SimplifyKeepsNonFiniteFoldsUnfolded) {
  const Ex e = log(ctx.lit(0.0));  // -inf: must stay symbolic
  const ExprId s = simplify(ctx.pool, e.id());
  EXPECT_EQ(ctx.pool.node(s).op, Op::kCall1);
}

TEST_F(ExprTest, InfixPrinting) {
  const Ex x = ctx.var("x");
  const Ex y = ctx.var("y");
  EXPECT_EQ(to_infix(ctx.pool, ctx.names, ((x + y) * x).id()),
            "(x + y)*x");
  EXPECT_EQ(to_infix(ctx.pool, ctx.names, (x - (y - x)).id()),
            "x - (y - x)");
  EXPECT_EQ(to_infix(ctx.pool, ctx.names, (-x).id()), "-x");
  EXPECT_EQ(to_infix(ctx.pool, ctx.names, pow(x + y, 2.0).id()),
            "(x + y)^2");
  EXPECT_EQ(to_infix(ctx.pool, ctx.names, min(x, y).id()), "min(x, y)");
}

TEST_F(ExprTest, FullFormPrinting) {
  const Ex x = ctx.var("x");
  const Ex y = ctx.var("y");
  EXPECT_EQ(to_fullform(ctx.pool, ctx.names, (x * y + 1.0).id()),
            "Plus[Times[x, y], 1]");
  FullFormOptions ff;
  ff.annotate_types = true;
  EXPECT_EQ(to_fullform(ctx.pool, ctx.names, (-x).id(), ff),
            "Minus[om$Type[x, om$Real]]");
}

TEST_F(ExprTest, DerPrinting) {
  EXPECT_EQ(to_fullform(ctx.pool, ctx.names, ctx.der("x").id()),
            "Derivative[1][x]");
}

TEST_F(ExprTest, DerRequiresSymbol) {
  const Ex e = ctx.var("x") + 1.0;
  EXPECT_THROW(ctx.pool.der(e.id()), Bug);
}

}  // namespace
}  // namespace omx::expr
