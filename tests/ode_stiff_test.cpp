// Stiff solvers: BDF orders, Newton behaviour, analytic vs finite-diff
// Jacobians, and the LSODA-like automatic switching (§3.2.1).
#include <gtest/gtest.h>

#include <cmath>

#include "omx/ode/auto_switch.hpp"
#include "omx/ode/solve.hpp"

namespace omx::ode {
namespace {

Problem decay(double lambda, double tend) {
  Problem p;
  p.n = 1;
  p.set_rhs([lambda](double, std::span<const double> y,
                     std::span<double> f) { f[0] = -lambda * y[0]; });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {1.0};
  return p;
}

/// Classic stiff test: y' = -1000(y - cos t) - sin t, y(t) -> cos t.
Problem stiff_tracking(double tend) {
  Problem p;
  p.n = 1;
  p.set_rhs([](double t, std::span<const double> y, std::span<double> f) {
    f[0] = -1000.0 * (y[0] - std::cos(t)) - std::sin(t);
  });
  p.set_jacobian([](double, std::span<const double>, la::Matrix& j) {
    j(0, 0) = -1000.0;
  });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {0.0};
  return p;
}

/// Van der Pol, mu = 30: mildly stiff limit cycle.
Problem van_der_pol(double mu, double tend) {
  Problem p;
  p.n = 2;
  p.set_rhs([mu](double, std::span<const double> y, std::span<double> f) {
    f[0] = y[1];
    f[1] = mu * (1.0 - y[0] * y[0]) * y[1] - y[0];
  });
  p.set_jacobian([mu](double, std::span<const double> y, la::Matrix& j) {
    j(0, 0) = 0.0;
    j(0, 1) = 1.0;
    j(1, 0) = -2.0 * mu * y[0] * y[1] - 1.0;
    j(1, 1) = mu * (1.0 - y[0] * y[0]);
  });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {2.0, 0.0};
  return p;
}

SolverOptions bdf_opts(int max_order, double fixed_h,
                       Tolerances tol = {}) {
  SolverOptions o;
  o.tol = tol;
  o.bdf_max_order = max_order;
  o.bdf_fixed_h = fixed_h;
  return o;
}

TEST(Bdf, Order1FixedStepConverges) {
  const Problem p = decay(1.0, 1.0);
  const double exact = std::exp(-1.0);
  const double e1 = std::fabs(
      solve(p, Method::kBdf, bdf_opts(1, 0.01)).final_state()[0] - exact);
  const double e2 = std::fabs(
      solve(p, Method::kBdf, bdf_opts(1, 0.005)).final_state()[0] - exact);
  EXPECT_NEAR(e1 / e2, 2.0, 0.2);
}

TEST(Bdf, Order2FixedStepConverges) {
  const Problem p = decay(1.0, 1.0);
  const double exact = std::exp(-1.0);
  const double e1 = std::fabs(
      solve(p, Method::kBdf, bdf_opts(2, 0.02)).final_state()[0] - exact);
  const double e2 = std::fabs(
      solve(p, Method::kBdf, bdf_opts(2, 0.01)).final_state()[0] - exact);
  EXPECT_NEAR(e1 / e2, 4.0, 0.8);
}

TEST(Bdf, Order3FixedStepConverges) {
  const Problem p = decay(1.0, 1.0);
  // The truncation error at order 3 is tiny; tighten the tolerances so the
  // Newton displacement criterion iterates well below it.
  const double exact = std::exp(-1.0);
  const double e1 = std::fabs(
      solve(p, Method::kBdf, bdf_opts(3, 0.02, {1e-13, 1e-13}))
          .final_state()[0] -
      exact);
  const double e2 = std::fabs(
      solve(p, Method::kBdf, bdf_opts(3, 0.01, {1e-13, 1e-13}))
          .final_state()[0] -
      exact);
  EXPECT_NEAR(e1 / e2, 8.0, 2.5);
}

TEST(Bdf, HighOrdersBeatLowOrdersAtSameStep) {
  const Problem p = decay(1.0, 1.0);
  const double exact = std::exp(-1.0);
  double prev_err = 1e9;
  for (int k = 1; k <= 4; ++k) {
    const SolverOptions o = bdf_opts(k, 0.05, {1e-13, 1e-13});
    const double err =
        std::fabs(solve(p, Method::kBdf, o).final_state()[0] - exact);
    EXPECT_LT(err, prev_err) << "order " << k;
    prev_err = err;
  }
}

TEST(Bdf, StableOnVeryStiffDecayWithLargeSteps) {
  // lambda = 1e6; explicit methods would need h ~ 1e-6, BDF1 takes h=0.1.
  const Problem p = decay(1e6, 1.0);
  const Solution s = solve(p, Method::kBdf, bdf_opts(1, 0.1));
  EXPECT_NEAR(s.final_state()[0], 0.0, 1e-6);
  EXPECT_LT(s.stats.steps, 20u);
}

TEST(Bdf, AdaptiveTracksStiffProblem) {
  const Problem p = stiff_tracking(3.0);
  SolverOptions o;
  o.tol.rtol = 1e-6;
  o.tol.atol = 1e-8;
  o.bdf_max_order = 2;
  const Solution s = solve(p, Method::kBdf, o);
  EXPECT_NEAR(s.final_state()[0], std::cos(3.0), 1e-3);
}

TEST(Bdf, AnalyticJacobianReducesRhsCalls) {
  const Problem with_jac = stiff_tracking(2.0);
  Problem without_jac = with_jac;
  without_jac.jacobian = nullptr;
  SolverOptions o;
  o.bdf_max_order = 2;
  const Solution sj = solve(with_jac, Method::kBdf, o);
  const Solution sf = solve(without_jac, Method::kBdf, o);
  // Finite differencing costs n+1 extra RHS calls per Jacobian refresh —
  // the §3.2.1 argument for generating the Jacobian symbolically.
  EXPECT_LT(sj.stats.rhs_calls, sf.stats.rhs_calls);
  EXPECT_NEAR(sj.final_state()[0], sf.final_state()[0], 1e-4);
}

TEST(Bdf, VanDerPolLimitCycle) {
  const Problem p = van_der_pol(30.0, 10.0);
  SolverOptions o;
  o.tol.rtol = 1e-6;
  o.tol.atol = 1e-8;
  o.bdf_max_order = 2;
  const Solution s = solve(p, Method::kBdf, o);
  // The limit cycle keeps |x| <= ~2.02.
  EXPECT_LE(std::fabs(s.final_state()[0]), 2.1);
  EXPECT_GT(s.stats.newton_iters, s.stats.steps);  // implicit work happened
}

TEST(Bdf, NewtonStatsAccumulate) {
  const Problem p = stiff_tracking(1.0);
  SolverOptions o;
  o.bdf_max_order = 2;
  const Solution s = solve(p, Method::kBdf, o);
  EXPECT_GT(s.stats.newton_iters, 0u);
  EXPECT_GT(s.stats.jac_calls, 0u);
}

TEST(AutoSwitch, StaysOnAdamsForNonStiff) {
  Problem p;
  p.n = 2;
  p.set_rhs([](double, std::span<const double> y, std::span<double> f) {
    f[0] = y[1];
    f[1] = -y[0];
  });
  p.t0 = 0.0;
  p.tend = 10.0;
  p.y0 = {1.0, 0.0};
  AutoSwitchOptions o;
  const AutoSwitchResult r = auto_switch(p, o);
  EXPECT_TRUE(r.switches.empty());
  EXPECT_EQ(r.final_method, SwitchMethod::kAdams);
  // Local-error-per-step control: global error ~ steps * tolerance.
  EXPECT_NEAR(r.solution.final_state()[0], std::cos(10.0), 1e-2);
}

TEST(AutoSwitch, SwitchesToBdfOnStiffProblem) {
  const Problem p = stiff_tracking(2.0);
  AutoSwitchOptions o;
  const AutoSwitchResult r = auto_switch(p, o);
  ASSERT_FALSE(r.switches.empty());
  EXPECT_EQ(r.switches.front().to, SwitchMethod::kBdf);
  EXPECT_NEAR(r.solution.final_state()[0], std::cos(2.0), 1e-2);
  EXPECT_GE(r.solution.stats.method_switches, 1u);
}

TEST(AutoSwitch, SolvesVanDerPol) {
  const Problem p = van_der_pol(100.0, 5.0);
  AutoSwitchOptions o;
  o.tol.rtol = 1e-5;
  o.tol.atol = 1e-7;
  const AutoSwitchResult r = auto_switch(p, o);
  EXPECT_LE(std::fabs(r.solution.final_state()[0]), 2.1);
}

TEST(AutoSwitch, RecordsMergedStats) {
  const Problem p = stiff_tracking(2.0);
  const AutoSwitchResult r = auto_switch(p, {});
  EXPECT_GT(r.solution.stats.rhs_calls, 0u);
  EXPECT_GT(r.solution.stats.steps, 0u);
}

TEST(AutoSwitch, SolveDispatchesLsodaLike) {
  const Problem p = stiff_tracking(2.0);
  const Solution s = solve(p, Method::kLsodaLike, {});
  EXPECT_NEAR(s.final_state()[0], std::cos(2.0), 1e-2);
  EXPECT_GE(s.stats.method_switches, 1u);
}

}  // namespace
}  // namespace omx::ode
