#include <gtest/gtest.h>

#include <cmath>

#include "omx/la/lu.hpp"
#include "omx/support/diagnostics.hpp"
#include "omx/support/rng.hpp"

namespace omx::la {
namespace {

TEST(Matrix, IdentityAndIndexing) {
  Matrix m = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const std::vector<double> x{1.0, 0.5, -1.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0 + 1.0 - 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0 + 2.5 - 6.0);
}

TEST(Matrix, Axpby) {
  Matrix a(1, 2), b(1, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  b(0, 0) = 10.0; b(0, 1) = 20.0;
  a.axpby(2.0, 0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 14.0);
}

TEST(VectorOps, NormsAndDot) {
  const std::vector<double> a{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  const std::vector<double> b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), -1.0);
}

TEST(VectorOps, WrmsNorm) {
  const std::vector<double> v{2.0, -2.0};
  const std::vector<double> w{1.0, 2.0};
  EXPECT_DOUBLE_EQ(wrms_norm(v, w), std::sqrt((4.0 + 1.0) / 2.0));
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  LuFactors lu(a);
  const std::vector<double> b{5.0, 10.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  LuFactors lu(a);
  const std::vector<double> b{2.0, 7.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(LuFactors{a}, omx::Error);
}

TEST(Lu, SolveAllowsAliasing) {
  Matrix a = Matrix::identity(3);
  a(0, 2) = 1.0;
  LuFactors lu(a);
  std::vector<double> b{4.0, 5.0, 6.0};
  lu.solve(b, b);
  EXPECT_NEAR(b[0], -2.0, 1e-12);
  EXPECT_NEAR(b[1], 5.0, 1e-12);
  EXPECT_NEAR(b[2], 6.0, 1e-12);
}

class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, RandomSystemsRoundTrip) {
  omx::SplitMix64 rng(123 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 1 + rng.below(12);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
    }
    a(i, i) += 4.0;  // diagonally dominant: comfortably nonsingular
  }
  std::vector<double> x_true(n);
  for (double& v : x_true) {
    v = rng.uniform(-10.0, 10.0);
  }
  std::vector<double> b(n), x(n);
  a.multiply(x_true, b);
  LuFactors lu(a);
  lu.solve(b, x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-9 * std::max(1.0, std::fabs(x_true[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace omx::la
