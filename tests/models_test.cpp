// The built-in application models: structure, physical sanity and
// simulation invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "omx/model/flatten.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/models/servo.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace omx::models {
namespace {

TEST(Oscillator, TwoStatesCircleSolution) {
  pipeline::CompiledModel cm =
      pipeline::compile_model(build_oscillator);
  EXPECT_EQ(cm.n(), 2u);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 3.14159265358979);
  ode::SolverOptions o;
  o.tol.rtol = 1e-10;
  const ode::Solution s = ode::solve(p, ode::Method::kDopri5, o);
  EXPECT_NEAR(s.final_state()[0], -1.0, 1e-7);  // cos(pi)
  EXPECT_NEAR(s.final_state()[1], 0.0, 1e-7);
}

TEST(Servo, TracksReferenceAfterTransient) {
  pipeline::CompiledModel cm = pipeline::compile_model(build_servo);
  ASSERT_EQ(cm.n(), 12u);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 20.0);
  ode::SolverOptions o;
  o.tol.rtol = 1e-8;
  const ode::Solution s = ode::solve(p, ode::Method::kDopri5, o);
  // After 3 closed-loop time constants each axis angle tracks its sin
  // reference to within a modest dynamic lag.
  for (const char* axis : {"axis[1]", "axis[2]", "boost"}) {
    const int th = cm.flat->state_index(
        cm.ctx->symbol(std::string(axis) + ".th"));
    ASSERT_GE(th, 0) << axis;
    const double got = s.final_state()[static_cast<std::size_t>(th)];
    EXPECT_NEAR(got, got, 0.0);  // finite
    EXPECT_LT(std::fabs(got), 2.0) << axis;  // bounded tracking
  }
}

TEST(Servo, VariantClassOverridesParameter) {
  expr::Context ctx;
  model::FlatSystem f = model::flatten(build_servo(ctx));
  EXPECT_DOUBLE_EQ(f.parameter_value(ctx.symbol("axis[1].Kp")), 6.0);
  EXPECT_DOUBLE_EQ(f.parameter_value(ctx.symbol("boost.Kp")), 12.0);
  EXPECT_DOUBLE_EQ(f.parameter_value(ctx.symbol("boost.R")), 1.2);
}

TEST(Hydro, MassBalanceHolds) {
  // d(level)/dt * area must equal inflow - total outflow at any state.
  pipeline::CompiledModel cm = pipeline::compile_model(build_hydro);
  std::vector<double> y(cm.n()), ydot(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y[i] = cm.flat->states()[i].start;
  }
  const double t = 7.0;
  cm.flat->eval_rhs(t, y, ydot);
  const int level = cm.flat->state_index(cm.ctx->symbol("dam.level"));
  ASSERT_GE(level, 0);

  // Recompute flows by hand: q = cd*angle*sqrt(max(level - tail, 0.1)).
  const double inflow = 60.0 + 20.0 * std::sin(0.05 * t);
  double out = 0.0;
  for (int g = 1; g <= 6; ++g) {
    const std::string name = "g" + std::to_string(g);
    const int angle =
        cm.flat->state_index(cm.ctx->symbol(name + ".angle"));
    ASSERT_GE(angle, 0);
    const double a = y[static_cast<std::size_t>(angle)];
    out += 12.0 * a *
           std::sqrt(std::max(y[static_cast<std::size_t>(level)] - 2.0,
                              0.1));
  }
  EXPECT_NEAR(ydot[static_cast<std::size_t>(level)],
              (inflow - out) / 50000.0, 1e-12);
}

TEST(Hydro, LevelStaysNearTargetOverAnHour) {
  pipeline::CompiledModel cm = pipeline::compile_model(build_hydro);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 3600.0);
  ode::SolverOptions o;
  o.tol.rtol = 1e-6;
  o.record_every = 16;
  const ode::Solution s = ode::solve(p, ode::Method::kDopri5, o);
  const int level = cm.flat->state_index(cm.ctx->symbol("dam.level"));
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double l = s.state(i)[static_cast<std::size_t>(level)];
    EXPECT_GT(l, 9.0);
    EXPECT_LT(l, 11.0);
  }
}

TEST(Hydro, GateServoTracksSetpoint) {
  pipeline::CompiledModel cm = pipeline::compile_model(build_hydro);
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 60.0);
  ode::SolverOptions o;
  const ode::Solution s = ode::solve(p, ode::Method::kDopri5, o);
  const int angle = cm.flat->state_index(cm.ctx->symbol("g1.angle"));
  const double a = s.final_state()[static_cast<std::size_t>(angle)];
  const double sp = 0.4 + 0.3 * std::sin(0.2 * 60.0) +
                    0.05 * std::sin(1.3 * 60.0);
  EXPECT_NEAR(a, sp, 0.25);  // PI loop keeps the gate near the schedule
}

// -- bearing -----------------------------------------------------------------

class BearingTest : public ::testing::TestWithParam<int> {};

TEST_P(BearingTest, StateCountScalesWithRollers) {
  const int n = GetParam();
  expr::Context ctx;
  BearingConfig cfg;
  cfg.n_rollers = n;
  model::FlatSystem f = model::flatten(build_bearing(ctx, cfg));
  EXPECT_EQ(f.num_states(), static_cast<std::size_t>(5 * n + 6));
  // Per roller: ~24 contact algebraics.
  EXPECT_GT(f.num_algebraics(), static_cast<std::size_t>(20 * n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BearingTest, ::testing::Values(2, 5, 10));

TEST(Bearing, RollersStartOnPitchCircle) {
  expr::Context ctx;
  BearingConfig cfg;
  model::FlatSystem f = model::flatten(build_bearing(ctx, cfg));
  const double Rp = cfg.pitch_radius();
  for (int i = 1; i <= cfg.n_rollers; ++i) {
    const std::string p = "w[" + std::to_string(i) + "]";
    const int xi = f.state_index(ctx.symbol(p + ".x"));
    const int yi = f.state_index(ctx.symbol(p + ".y"));
    ASSERT_GE(xi, 0);
    const double x = f.states()[static_cast<std::size_t>(xi)].start;
    const double y = f.states()[static_cast<std::size_t>(yi)].start;
    EXPECT_NEAR(std::hypot(x, y), Rp, 1e-12) << p;
  }
}

TEST(Bearing, UnloadedCenteredBearingHasNoContactForces) {
  // Without gravity/load/drive and with the ring centered, the clearance
  // leaves every roller floating: all accelerations are zero.
  expr::Context ctx;
  BearingConfig cfg;
  cfg.gravity = 0.0;
  cfg.radial_load = 0.0;
  cfg.drive_torque = 0.0;
  cfg.inner_speed0 = 0.0;
  cfg.spin_damping = 0.0;
  cfg.inner_spin_damping = 0.0;
  model::FlatSystem f = model::flatten(build_bearing(ctx, cfg));
  std::vector<double> y(f.num_states()), ydot(f.num_states());
  for (std::size_t i = 0; i < f.num_states(); ++i) {
    y[i] = f.states()[i].start;
  }
  f.eval_rhs(0.0, y, ydot);
  for (std::size_t i = 0; i < f.num_states(); ++i) {
    EXPECT_NEAR(ydot[i], 0.0, 1e-9) << f.state_name(i);
  }
}

TEST(Bearing, LoadedRingAcceleratesDownward) {
  expr::Context ctx;
  BearingConfig cfg;
  model::FlatSystem f = model::flatten(build_bearing(ctx, cfg));
  std::vector<double> y(f.num_states()), ydot(f.num_states());
  for (std::size_t i = 0; i < f.num_states(); ++i) {
    y[i] = f.states()[i].start;
  }
  f.eval_rhs(0.0, y, ydot);
  const int ivy = f.state_index(ctx.symbol("inner.vy"));
  EXPECT_LT(ydot[static_cast<std::size_t>(ivy)], 0.0);
  // theta' = omega exactly.
  const int ith = f.state_index(ctx.symbol("inner.theta"));
  EXPECT_DOUBLE_EQ(ydot[static_cast<std::size_t>(ith)], cfg.inner_speed0);
}

TEST(Bearing, ShortTransientStaysBounded) {
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) {
        BearingConfig cfg;
        cfg.n_rollers = 6;
        return build_bearing(ctx, cfg);
      });
  ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 5e-4);
  ode::SolverOptions o;
  o.dt = 1e-6;
  o.record_every = 50;
  const ode::Solution s = ode::solve(p, ode::Method::kRk4, o);
  BearingConfig cfg;
  cfg.n_rollers = 6;
  const double Ro = cfg.outer_race_radius();
  // Rollers stay inside the outer raceway (+ a hair of penetration).
  for (int i = 1; i <= 6; ++i) {
    const std::string pr = "w[" + std::to_string(i) + "]";
    const int xi = cm.flat->state_index(cm.ctx->symbol(pr + ".x"));
    const int yi = cm.flat->state_index(cm.ctx->symbol(pr + ".y"));
    const double x = s.final_state()[static_cast<std::size_t>(xi)];
    const double y = s.final_state()[static_cast<std::size_t>(yi)];
    EXPECT_LT(std::hypot(x, y), Ro - cfg.roller_radius + 1e-4) << pr;
    EXPECT_GT(std::hypot(x, y), cfg.inner_race_radius + cfg.roller_radius
                                 - 1e-4) << pr;
  }
  // The driven ring keeps spinning in the same direction.
  const int iw = cm.flat->state_index(cm.ctx->symbol("inner.omega"));
  EXPECT_GT(s.final_state()[static_cast<std::size_t>(iw)], 0.0);
}

TEST(Bearing, RejectsDegenerateConfig) {
  expr::Context ctx;
  BearingConfig cfg;
  cfg.n_rollers = 1;
  EXPECT_THROW(build_bearing(ctx, cfg), omx::Bug);
}

}  // namespace
}  // namespace omx::models
