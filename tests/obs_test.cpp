// Telemetry subsystem: registry concurrency, histogram bucket edges,
// enabled/disabled gating, span recording, and exporter well-formedness
// (round-tripped through the strict JSON validator).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"
#include "omx/support/diagnostics.hpp"

namespace omx::obs {
namespace {

TEST(Registry, SameNameReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("y"));
}

TEST(Registry, CounterSurvivesConcurrentHammering) {
  Registry reg;
  Counter& c = reg.counter("hammered");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) {
        c.add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared." + std::to_string(i)).add();
        reg.counter("own." + std::to_string(t)).add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.counter("shared.0").value(), 8u);   // once per thread
  EXPECT_EQ(reg.counter("own.3").value(), 200u);    // one thread, 200x
}

TEST(Registry, DisabledUpdatesAreDropped) {
  Registry reg;
  Counter& c = reg.counter("gated");
  c.add(5);
  set_enabled(false);
  c.add(7);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 6u);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == bound  -> bucket 0 (v <= bounds[i])
  h.observe(1.0001); //           -> bucket 1
  h.observe(10.0);   //           -> bucket 1
  h.observe(100.0);  //           -> bucket 2
  h.observe(1e6);    // overflow  -> bucket 3
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 1e6, 1e-9);
}

TEST(Histogram, RejectsBadBounds) {
  Registry reg;
  EXPECT_THROW(reg.histogram("bad", {3.0, 2.0}), omx::Bug);
}

TEST(Snapshot, ResetZeroesEverything) {
  Registry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.reset();
  const Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].second, 0u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, 0.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 0u);
}

TEST(Trace, SpansRecordOnlyWhileActive) {
  TraceBuffer& tb = TraceBuffer::global();
  { Span s("before-start", "test"); }
  tb.start();
  { Span s("during", "test"); }
  tb.stop();
  { Span s("after-stop", "test"); }
  bool saw_during = false;
  for (const TraceEvent& ev : tb.events()) {
    EXPECT_NE(ev.name, "before-start");
    EXPECT_NE(ev.name, "after-stop");
    if (ev.name == "during") {
      saw_during = true;
      EXPECT_GE(ev.dur_ns, 0);
      EXPECT_GE(ev.start_ns, 0);
    }
  }
  EXPECT_TRUE(saw_during);
}

TEST(Trace, ThreadsGetDistinctIds) {
  const std::uint32_t main_id = TraceBuffer::thread_id();
  std::uint32_t other_id = main_id;
  std::thread([&other_id] { other_id = TraceBuffer::thread_id(); }).join();
  EXPECT_NE(main_id, other_id);
  EXPECT_EQ(TraceBuffer::thread_id(), main_id);  // stable per thread
}

// -- JSON validator sanity (it guards the exporter tests below) -------------

TEST(ValidateJson, AcceptsAndRejects) {
  EXPECT_TRUE(validate_json("{}"));
  EXPECT_TRUE(validate_json("[1, 2.5, -3e-7, \"a\\nb\", true, null]"));
  EXPECT_TRUE(validate_json("{\"a\": {\"b\": [{}]}}"));
  EXPECT_FALSE(validate_json(""));
  EXPECT_FALSE(validate_json("{"));
  EXPECT_FALSE(validate_json("{\"a\": }"));
  EXPECT_FALSE(validate_json("[1,]"));
  EXPECT_FALSE(validate_json("{} trailing"));
  EXPECT_FALSE(validate_json("'single'"));
  EXPECT_FALSE(validate_json("{\"a\": 01e}"));
}

TEST(Export, MetricsJsonRoundTrips) {
  Registry reg;
  reg.counter("rhs.calls").add(42);
  reg.gauge("speed \"quoted\"\n").set(-1.25e-3);
  reg.histogram("lat", {1e-3, 1e-2}).observe(5e-3);
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_TRUE(validate_json(json)) << json;
  EXPECT_NE(json.find("\"rhs.calls\": 42"), std::string::npos);
  // Empty registries must still be valid documents.
  Registry empty;
  EXPECT_TRUE(validate_json(metrics_json(empty.snapshot())));
}

TEST(Export, ChromeTraceJsonRoundTrips) {
  TraceBuffer& tb = TraceBuffer::global();
  tb.start();
  tb.set_thread_name("tester \"quoted\"");
  { Span s("phase/a", "test"); }
  { Span s("phase/b", "test"); }
  tb.stop();
  const std::string json = chrome_trace_json(tb);
  EXPECT_TRUE(validate_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("phase/a"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Export, TextSummaryListsEverything) {
  Registry reg;
  reg.counter("net.messages").add(8);
  reg.gauge("speed").set(2.0);
  reg.histogram("lat", {1.0}).observe(0.5);
  const std::string text = format_text(reg.snapshot());
  EXPECT_NE(text.find("net.messages"), std::string::npos);
  EXPECT_NE(text.find("8"), std::string::npos);
  EXPECT_NE(text.find("speed"), std::string::npos);
  EXPECT_NE(text.find("histogram lat"), std::string::npos);
}

}  // namespace
}  // namespace omx::obs
