// Telemetry subsystem: registry concurrency, histogram bucket edges,
// enabled/disabled gating, span recording, and exporter well-formedness
// (round-tripped through the strict JSON validator).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"
#include "omx/support/diagnostics.hpp"

namespace omx::obs {
namespace {

TEST(Registry, SameNameReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("y"));
}

TEST(Registry, CounterSurvivesConcurrentHammering) {
  Registry reg;
  Counter& c = reg.counter("hammered");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) {
        c.add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Registry, ConcurrentRegistrationIsSafe) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared." + std::to_string(i)).add();
        reg.counter("own." + std::to_string(t)).add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.counter("shared.0").value(), 8u);   // once per thread
  EXPECT_EQ(reg.counter("own.3").value(), 200u);    // one thread, 200x
}

TEST(Registry, DisabledUpdatesAreDropped) {
  Registry reg;
  Counter& c = reg.counter("gated");
  c.add(5);
  set_enabled(false);
  c.add(7);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 6u);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == bound  -> bucket 0 (v <= bounds[i])
  h.observe(1.0001); //           -> bucket 1
  h.observe(10.0);   //           -> bucket 1
  h.observe(100.0);  //           -> bucket 2
  h.observe(1e6);    // overflow  -> bucket 3
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 1e6, 1e-9);
}

TEST(Histogram, RejectsBadBounds) {
  Registry reg;
  EXPECT_THROW(reg.histogram("bad", {3.0, 2.0}), omx::Bug);
}

TEST(Snapshot, ResetZeroesEverything) {
  Registry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.reset();
  const Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].second, 0u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, 0.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 0u);
}

TEST(Trace, SpansRecordOnlyWhileActive) {
  TraceBuffer& tb = TraceBuffer::global();
  { Span s("before-start", "test"); }
  tb.start();
  { Span s("during", "test"); }
  tb.stop();
  { Span s("after-stop", "test"); }
  bool saw_during = false;
  for (const TraceEvent& ev : tb.events()) {
    EXPECT_NE(ev.name, "before-start");
    EXPECT_NE(ev.name, "after-stop");
    if (ev.name == "during") {
      saw_during = true;
      EXPECT_GE(ev.dur_ns, 0);
      EXPECT_GE(ev.start_ns, 0);
    }
  }
  EXPECT_TRUE(saw_during);
}

TEST(Trace, ThreadsGetDistinctIds) {
  const std::uint32_t main_id = TraceBuffer::thread_id();
  std::uint32_t other_id = main_id;
  std::thread([&other_id] { other_id = TraceBuffer::thread_id(); }).join();
  EXPECT_NE(main_id, other_id);
  EXPECT_EQ(TraceBuffer::thread_id(), main_id);  // stable per thread
}

// -- JSON validator sanity (it guards the exporter tests below) -------------

TEST(ValidateJson, AcceptsAndRejects) {
  EXPECT_TRUE(validate_json("{}"));
  EXPECT_TRUE(validate_json("[1, 2.5, -3e-7, \"a\\nb\", true, null]"));
  EXPECT_TRUE(validate_json("{\"a\": {\"b\": [{}]}}"));
  EXPECT_FALSE(validate_json(""));
  EXPECT_FALSE(validate_json("{"));
  EXPECT_FALSE(validate_json("{\"a\": }"));
  EXPECT_FALSE(validate_json("[1,]"));
  EXPECT_FALSE(validate_json("{} trailing"));
  EXPECT_FALSE(validate_json("'single'"));
  EXPECT_FALSE(validate_json("{\"a\": 01e}"));
}

TEST(Export, MetricsJsonRoundTrips) {
  Registry reg;
  reg.counter("rhs.calls").add(42);
  reg.gauge("speed \"quoted\"\n").set(-1.25e-3);
  reg.histogram("lat", {1e-3, 1e-2}).observe(5e-3);
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_TRUE(validate_json(json)) << json;
  EXPECT_NE(json.find("\"rhs.calls\": 42"), std::string::npos);
  // Empty registries must still be valid documents.
  Registry empty;
  EXPECT_TRUE(validate_json(metrics_json(empty.snapshot())));
}

TEST(Export, ChromeTraceJsonRoundTrips) {
  TraceBuffer& tb = TraceBuffer::global();
  tb.start();
  tb.set_thread_name("tester \"quoted\"");
  { Span s("phase/a", "test"); }
  { Span s("phase/b", "test"); }
  tb.stop();
  const std::string json = chrome_trace_json(tb);
  EXPECT_TRUE(validate_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("phase/a"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Export, TextSummaryListsEverything) {
  Registry reg;
  reg.counter("net.messages").add(8);
  reg.gauge("speed").set(2.0);
  reg.histogram("lat", {1.0}).observe(0.5);
  const std::string text = format_text(reg.snapshot());
  EXPECT_NE(text.find("net.messages"), std::string::npos);
  EXPECT_NE(text.find("8"), std::string::npos);
  EXPECT_NE(text.find("speed"), std::string::npos);
  EXPECT_NE(text.find("histogram lat"), std::string::npos);
}

// -- JSON validator edge cases (the exporters lean on all of these) ---------

TEST(ValidateJson, EscapedStringsAndExponents) {
  EXPECT_TRUE(validate_json(R"({"a\"b": "c\\d"})"));
  EXPECT_TRUE(validate_json(R"(["é", "\/", "\b\f"])"));
  EXPECT_TRUE(validate_json("[1e3, 1E+3, 1.5e-300, -0.0, 0.001]"));
  EXPECT_FALSE(validate_json(R"("bad \q escape")"));
  EXPECT_FALSE(validate_json(R"("short \u00g0")"));
  EXPECT_FALSE(validate_json("[1e]"));
  EXPECT_FALSE(validate_json("[1.]"));
  EXPECT_FALSE(validate_json("[.5]"));
  EXPECT_FALSE(validate_json("[+1]"));
}

TEST(ValidateJson, DeepNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) {
    deep += "[";
  }
  deep += "{\"leaf\": [0]}";
  for (int i = 0; i < 200; ++i) {
    deep += "]";
  }
  EXPECT_TRUE(validate_json(deep));
  deep.pop_back();  // unbalanced
  EXPECT_FALSE(validate_json(deep));
}

// -- log-spaced bounds + quantiles ------------------------------------------

TEST(Histogram, LogSpacedBoundsWalkDecades) {
  const std::vector<double> expect = {1e-3, 2e-3, 5e-3, 1e-2, 2e-2,
                                      5e-2, 0.1,  0.2,  0.5,  1.0};
  const std::vector<double> got = log_spaced_bounds(1e-3, 1.0);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expect[i], expect[i] * 1e-9) << "edge " << i;
  }
  // Endpoints that are not {1,2,5} mantissas still bracket the range.
  const std::vector<double> odd = log_spaced_bounds(3e-4, 0.4);
  EXPECT_GE(odd.front(), 3e-4);
  EXPECT_GE(odd.back(), 0.4);
  for (std::size_t i = 1; i < odd.size(); ++i) {
    EXPECT_LT(odd[i - 1], odd[i]);
  }
  EXPECT_THROW(log_spaced_bounds(0.0, 1.0), omx::Bug);
  EXPECT_THROW(log_spaced_bounds(1.0, 1.0), omx::Bug);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  // bounds {1,2,4}: 2 samples in (0,1], 2 in (1,2], none beyond.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts = {2, 2, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.75), 1.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 1.00), 2.0);
}

TEST(Histogram, QuantileEdgeCases) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_EQ(histogram_quantile(bounds, {0, 0, 0}, 0.5), 0.0);  // empty
  EXPECT_EQ(histogram_quantile({}, {}, 0.5), 0.0);             // no bounds
  // Everything in the overflow bucket clamps to the last edge.
  EXPECT_EQ(histogram_quantile(bounds, {0, 0, 5}, 0.5), 2.0);
  // Out-of-range q is clamped, not UB.
  EXPECT_EQ(histogram_quantile(bounds, {4, 0, 0}, -1.0),
            histogram_quantile(bounds, {4, 0, 0}, 0.0));
  EXPECT_EQ(histogram_quantile(bounds, {4, 0, 0}, 2.0), 1.0);
}

TEST(Histogram, MemberQuantileMatchesFreeFunction) {
  Registry reg;
  Histogram& h = reg.histogram("q", log_spaced_bounds(1e-3, 1.0));
  for (int i = 1; i <= 100; ++i) {
    h.observe(i * 1e-3);  // ~uniform over (0, 0.1]
  }
  const double p50 = h.quantile(0.50);
  EXPECT_GT(p50, 0.02);
  EXPECT_LT(p50, 0.1);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].quantile(0.50), p50);
}

TEST(Export, MetricsJsonCarriesPercentiles) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(0.6);
  h.observe(1.5);
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_TRUE(validate_json(json)) << json;
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p90\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
}

TEST(Export, TextSummaryShowsPercentilesAndBounds) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {0.25, 1.0});
  h.observe(0.2);
  h.observe(0.2);
  const std::string text = format_text(reg.snapshot());
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("le 0.25"), std::string::npos);
  EXPECT_NE(text.find("le 1 "), std::string::npos);
  EXPECT_NE(text.find("overflow"), std::string::npos);
}

// -- span profile aggregation -----------------------------------------------

namespace {

TraceEvent make_event(const char* name, std::uint32_t tid,
                      std::int64_t start_ns, std::int64_t dur_ns) {
  TraceEvent ev;
  ev.name = name;
  ev.tid = tid;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  return ev;
}

}  // namespace

TEST(Profile, MergesNestedSpansAcrossThreads) {
  // Thread 1: solve [0,1000) containing two jac spans; thread 2: a
  // second solve [0,500). Same-name spans under the same parent merge.
  const std::vector<TraceEvent> events = {
      make_event("solve", 1, 0, 1000),
      make_event("jac", 1, 100, 200),
      make_event("jac", 1, 400, 100),
      make_event("solve", 2, 0, 500),
  };
  const Profile prof = aggregate_profile(events);
  EXPECT_EQ(prof.wall_ns, 1000);
  ASSERT_EQ(prof.nodes.size(), 2u);
  const ProfileNode& solve = prof.nodes[0];
  EXPECT_EQ(solve.name, "solve");
  EXPECT_EQ(solve.depth, 0);
  EXPECT_EQ(solve.count, 2u);
  EXPECT_EQ(solve.total_ns, 1500);
  EXPECT_EQ(solve.self_ns, 1200);  // 1500 minus the 300 ns of jac
  const ProfileNode& jac = prof.nodes[1];
  EXPECT_EQ(jac.name, "jac");
  EXPECT_EQ(jac.depth, 1);
  EXPECT_EQ(jac.count, 2u);
  EXPECT_EQ(jac.total_ns, 300);
  EXPECT_EQ(jac.self_ns, 300);
}

TEST(Profile, SiblingsDoNotNestAndPercentilesAreNearestRank) {
  // Back-to-back spans at the same level (the second starts exactly when
  // the first ends) must be siblings, not parent/child.
  const std::vector<TraceEvent> events = {
      make_event("a", 1, 0, 100),
      make_event("a", 1, 100, 300),
  };
  const Profile prof = aggregate_profile(events);
  ASSERT_EQ(prof.nodes.size(), 1u);
  EXPECT_EQ(prof.nodes[0].count, 2u);
  EXPECT_EQ(prof.nodes[0].depth, 0);
  EXPECT_EQ(prof.nodes[0].p50_ns, 300);  // nearest-rank of {100, 300}
  EXPECT_EQ(prof.nodes[0].p99_ns, 300);
}

TEST(Profile, EmptyBufferYieldsEmptyProfile) {
  const Profile prof = aggregate_profile(std::vector<TraceEvent>{});
  EXPECT_TRUE(prof.nodes.empty());
  EXPECT_EQ(prof.wall_ns, 0);
  EXPECT_NE(profile_text(prof).find("no spans"), std::string::npos);
  EXPECT_TRUE(validate_json(profile_json(prof)));
}

TEST(Export, ProfileJsonAndTextRoundTrip) {
  const std::vector<TraceEvent> events = {
      make_event("outer \"q\"", 1, 0, 1000),
      make_event("inner", 1, 200, 400),
  };
  const Profile prof = aggregate_profile(events);
  const std::string json = profile_json(prof);
  EXPECT_TRUE(validate_json(json)) << json;
  EXPECT_NE(json.find("\"wall_ns\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"self_ns\": 600"), std::string::npos);
  const std::string text = profile_text(prof);
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("  inner"), std::string::npos);  // indented child
  EXPECT_NE(text.find("wall:"), std::string::npos);
}

// -- chrome trace metadata + counter tracks ---------------------------------

TEST(Export, ChromeTracePinsMetadataAndCounterTracks) {
  TraceBuffer tb;
  tb.start();
  tb.set_process_name("omx/test \"proc\"");
  tb.set_thread_name("driver");
  tb.record("span/a", "test", 1000, 500);
  tb.record_counter("util/worker-0", 2000, 1.0);
  tb.record_counter("util/worker-0", 3000, 0.0);
  tb.stop();
  const std::string json = chrome_trace_json(tb);
  EXPECT_TRUE(validate_json(json)) << json;
  // Metadata: a tid-less process_name record and a thread_name record
  // bound to this thread's dense id.
  EXPECT_NE(json.find("{\"ph\": \"M\", \"pid\": 1, \"name\": "
                      "\"process_name\", \"args\": {\"name\": "
                      "\"omx/test \\\"proc\\\"\"}}"),
            std::string::npos)
      << json;
  const std::string tid = std::to_string(TraceBuffer::thread_id());
  EXPECT_NE(json.find("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + tid +
                      ", \"name\": \"thread_name\", \"args\": {\"name\": "
                      "\"driver\"}}"),
            std::string::npos)
      << json;
  // Counter samples: ns timestamps exported as fractional microseconds.
  EXPECT_NE(json.find("{\"ph\": \"C\", \"pid\": 1, \"name\": "
                      "\"util/worker-0\", \"ts\": 2, "
                      "\"args\": {\"value\": 1}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ts\": 3, \"args\": {\"value\": 0}}"),
            std::string::npos)
      << json;
  // The span itself still exports as a complete event.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("span/a"), std::string::npos);
}

TEST(Trace, CounterSamplesIgnoredWhileInactive) {
  TraceBuffer tb;
  tb.record_counter("util/worker-0", 0, 1.0);  // before start
  tb.start();
  tb.record_counter("util/worker-0", 10, 0.5);
  tb.stop();
  tb.record_counter("util/worker-0", 20, 0.25);  // after stop
  ASSERT_EQ(tb.counter_samples().size(), 1u);
  EXPECT_EQ(tb.counter_samples()[0].at_ns, 10);
  tb.start();  // restart clears old samples
  tb.stop();
  EXPECT_TRUE(tb.counter_samples().empty());
}

// -- flight recorder --------------------------------------------------------

TEST(Recorder, DisabledRecordsNothing) {
  Recorder rec(16);
  StepEvent ev;
  ev.kind = StepEventKind::kStepAccepted;
  rec.record(ev);  // never started: must be a no-op
  EXPECT_FALSE(rec.enabled());
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Recorder, OverflowDropsAndCountsInsteadOfBlocking) {
  Recorder rec(8);
  rec.start();
  for (int i = 0; i < 20; ++i) {
    StepEvent ev;
    ev.kind = StepEventKind::kStepAccepted;
    ev.method = "bdf";
    ev.t = i;
    rec.record(ev);
  }
  rec.stop();
  const std::vector<StepEvent> events = rec.events();
  ASSERT_EQ(events.size(), 8u);  // first `capacity` kept, rest dropped
  EXPECT_EQ(rec.dropped(), 12u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(events[i].t, i);  // startup survives, in order
  }
}

TEST(Recorder, StartResetsEventsAndDrops) {
  Recorder rec(4);
  rec.start();
  for (int i = 0; i < 6; ++i) {
    rec.record(StepEvent{});
  }
  EXPECT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  rec.start();  // fresh rings
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(StepEvent{});
  EXPECT_EQ(rec.events().size(), 1u);
}

TEST(Recorder, MergedEventsAreTimeSortedAcrossThreads) {
  Recorder rec(4096);
  rec.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < 100; ++i) {
        StepEvent ev;
        ev.kind = StepEventKind::kStepAccepted;
        ev.method = "adams";
        rec.record(ev);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  rec.stop();
  const std::vector<StepEvent> events = rec.events();
  ASSERT_EQ(events.size(), 400u);
  EXPECT_EQ(rec.dropped(), 0u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].when_ns, events[i].when_ns);
  }
}

TEST(Export, RecorderJsonRoundTrips) {
  Recorder rec(16);
  rec.start();
  StepEvent ev;
  ev.kind = StepEventKind::kJacEvaluate;
  ev.method = "bdf";
  ev.order = 3;
  ev.t = 0.25;
  ev.h = 1e-4;
  ev.err = 0.5;
  rec.record(ev);
  rec.stop();
  const std::string json = recorder_json(rec);
  EXPECT_TRUE(validate_json(json)) << json;
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"capacity_per_thread\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"jac_evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"bdf\""), std::string::npos);
  EXPECT_NE(json.find("\"order\": 3"), std::string::npos);
  // An empty recorder is still a valid document.
  Recorder empty(4);
  EXPECT_TRUE(validate_json(recorder_json(empty)));
}

}  // namespace
}  // namespace omx::obs
