// Supervisor/worker runtime: functional equivalence with serial
// execution, determinism across worker counts, message accounting, the
// communication-analysis ablation, and the virtual-time machine model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "omx/codegen/tape.hpp"
#include "omx/model/flatten.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"
#include "omx/parser/parser.hpp"
#include "omx/runtime/parallel_rhs.hpp"
#include "omx/runtime/simulated_machine.hpp"

namespace omx::runtime {
namespace {

struct Compiled {
  std::unique_ptr<expr::Context> ctx;
  std::unique_ptr<model::FlatSystem> flat;
  vm::Program program;
};

Compiled compile_bearing(int rollers) {
  Compiled c;
  c.ctx = std::make_unique<expr::Context>();
  models::BearingConfig cfg;
  cfg.n_rollers = rollers;
  c.flat = std::make_unique<model::FlatSystem>(
      model::flatten(models::build_bearing(*c.ctx, cfg)));
  const auto set = codegen::build_assignments(*c.flat);
  const auto plan = codegen::plan_tasks(*c.flat, set, {});
  c.program = codegen::compile_parallel_tape(*c.flat, plan);
  return c;
}

std::vector<double> start_state(const model::FlatSystem& f) {
  std::vector<double> y;
  for (const auto& s : f.states()) {
    y.push_back(s.start);
  }
  return y;
}

TEST(WorkerPool, MatchesReferenceForAnyWorkerCount) {
  const Compiled c = compile_bearing(4);
  const auto y = start_state(*c.flat);
  std::vector<double> ref(y.size());
  c.flat->eval_rhs(0.0, y, ref);

  for (std::size_t workers : {1, 2, 3, 7}) {
    WorkerPool::Options opts;
    opts.num_workers = workers;
    WorkerPool pool(c.program, opts);
    std::vector<double> got(y.size());
    pool.eval(0.0, y, got);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-9 * std::max(1.0, std::fabs(ref[i])))
          << "workers=" << workers << " state " << i;
    }
  }
}

TEST(WorkerPool, RepeatedEvalsAreDeterministic) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  WorkerPool::Options opts;
  opts.num_workers = 3;
  WorkerPool pool(c.program, opts);
  std::vector<double> a(y.size()), b(y.size());
  pool.eval(0.1, y, a);
  pool.eval(0.1, y, b);
  EXPECT_EQ(a, b);  // bitwise: same schedule, same accumulation order
}

TEST(WorkerPool, BitForBitIdenticalAcrossWorkerCountsAndStealing) {
  // Per-task result buffers + task-id-order accumulation make the result
  // bit-for-bit identical no matter how many workers run or who steals
  // what — a stronger guarantee than the seed's EXPECT_NEAR checks.
  const Compiled c = compile_bearing(6);
  const auto y = start_state(*c.flat);
  WorkerPool::Options base_opts;
  base_opts.num_workers = 1;
  WorkerPool base(c.program, base_opts);
  std::vector<double> ref(y.size());
  base.eval(0.2, y, ref);

  for (const std::size_t workers : {2u, 4u, 8u}) {
    for (const bool stealing : {false, true}) {
      WorkerPool::Options opts;
      opts.num_workers = workers;
      opts.stealing = stealing;
      WorkerPool pool(c.program, opts);
      std::vector<double> got(y.size());
      pool.eval(0.2, y, got);
      EXPECT_EQ(got, ref)
          << "workers=" << workers << " stealing=" << stealing;
    }
  }
}

TEST(ParallelRhs, StealingKeepsSemiDynamicCadence) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  ParallelRhsOptions opts;
  opts.pool.num_workers = 3;
  opts.pool.stealing = true;
  opts.sched.reschedule_period = 4;
  ParallelRhs rhs(c.program, opts);
  std::vector<double> out(y.size());
  const std::size_t initial = rhs.num_reschedules();
  for (int i = 0; i < 12; ++i) {
    rhs.eval(0.0, y, out);
  }
  // Stolen-task timings feed sched::semidynamic exactly like static ones.
  EXPECT_EQ(rhs.num_reschedules(), initial + 3);
}

TEST(WorkerPool, CountsMessages) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  WorkerPool::Options opts;
  opts.num_workers = 2;
  WorkerPool pool(c.program, opts);
  std::vector<double> out(y.size());
  pool.eval(0.0, y, out);
  // Per busy worker: supervisor send + worker receive + worker send +
  // supervisor receive = 4 charges.
  EXPECT_EQ(pool.stats().messages.load(), 8u);
  EXPECT_GT(pool.stats().bytes.load(), 0u);
}

TEST(WorkerPool, ScheduleUpdateKeepsResultsCorrect) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  std::vector<double> ref(y.size());
  c.flat->eval_rhs(0.0, y, ref);

  WorkerPool::Options opts;
  opts.num_workers = 2;
  WorkerPool pool(c.program, opts);
  // Pathological schedule: everything on worker 1.
  sched::Schedule s(2);
  for (std::uint32_t t = 0;
       t < static_cast<std::uint32_t>(c.program.tasks.size()); ++t) {
    s[1].push_back(t);
  }
  pool.set_schedule(s);
  std::vector<double> got(y.size());
  pool.eval(0.0, y, got);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-9 * std::max(1.0, std::fabs(ref[i])));
  }
}

TEST(WorkerPool, TaskTimesArePopulated) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  WorkerPool::Options opts;
  opts.num_workers = 2;
  WorkerPool pool(c.program, opts);
  std::vector<double> out(y.size());
  pool.eval(0.0, y, out);
  const auto times = pool.last_task_seconds();
  ASSERT_EQ(times.size(), c.program.tasks.size());
  for (double t : times) {
    EXPECT_GE(t, 0.0);
  }
}

TEST(Observability, EvalIncrementsRhsCallsCounter) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  obs::Counter& rhs_calls = obs::Registry::global().counter("rhs.calls");
  WorkerPool::Options opts;
  opts.num_workers = 2;
  WorkerPool pool(c.program, opts);
  std::vector<double> out(y.size());
  const std::uint64_t before = rhs_calls.value();
  for (int i = 0; i < 5; ++i) {
    pool.eval(0.0, y, out);
  }
  EXPECT_EQ(rhs_calls.value(), before + 5);
}

TEST(Observability, TaskSpansCoverEvalWallTime) {
  const Compiled c = compile_bearing(4);
  const auto y = start_state(*c.flat);
  WorkerPool::Options opts;
  opts.num_workers = 3;
  // Make tasks long enough that span durations dominate clock-read noise.
  opts.compute_scale = 50;
  WorkerPool pool(c.program, opts);
  std::vector<double> out(y.size());
  pool.eval(0.0, y, out);  // warm-up outside the trace

  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  tb.start();
  constexpr int kEvals = 3;
  for (int i = 0; i < kEvals; ++i) {
    pool.eval(0.0, y, out);
  }
  tb.stop();

  std::int64_t eval_wall_ns = 0;
  std::int64_t eval_spans = 0;
  std::int64_t task_ns = 0;
  std::int64_t task_spans = 0;
  for (const obs::TraceEvent& ev : tb.events()) {
    if (ev.name == "rhs.eval") {
      eval_wall_ns += ev.dur_ns;
      ++eval_spans;
    } else if (std::string_view(ev.category) == "task") {
      task_ns += ev.dur_ns;
      ++task_spans;
    }
  }
  EXPECT_EQ(eval_spans, kEvals);
  // Every scheduled task produces one span per eval.
  EXPECT_EQ(task_spans,
            kEvals * static_cast<std::int64_t>(c.program.tasks.size()));
  // The workers' task time must fit inside the supervisor's eval windows:
  // positive, and no more than workers x wall (perfect overlap).
  EXPECT_GT(task_ns, 0);
  EXPECT_LE(task_ns, eval_wall_ns * static_cast<std::int64_t>(
                                        pool.num_workers()));
}

TEST(Observability, LastTaskSecondsRequiresAnEval) {
  const Compiled c = compile_bearing(3);
  WorkerPool::Options opts;
  opts.num_workers = 2;
  WorkerPool pool(c.program, opts);
  EXPECT_THROW(pool.last_task_seconds(), omx::Bug);
  const auto y = start_state(*c.flat);
  std::vector<double> out(y.size());
  pool.eval(0.0, y, out);
  EXPECT_EQ(pool.last_task_seconds().size(), c.program.tasks.size());
}

TEST(ParallelRhs, SemiDynamicReschedulesAtCadence) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  ParallelRhsOptions opts;
  opts.pool.num_workers = 2;
  opts.sched.reschedule_period = 4;
  ParallelRhs rhs(c.program, opts);
  std::vector<double> out(y.size());
  const std::size_t initial = rhs.num_reschedules();
  for (int i = 0; i < 12; ++i) {
    rhs.eval(0.0, y, out);
  }
  EXPECT_EQ(rhs.num_reschedules(), initial + 3);
  EXPECT_EQ(rhs.rhs_calls(), 12u);
  EXPECT_GT(rhs.calls_per_second(), 0.0);
}

TEST(ParallelRhs, SerialBaselineMatches) {
  const Compiled c = compile_bearing(3);
  const auto y = start_state(*c.flat);
  std::vector<double> ref(y.size());
  c.flat->eval_rhs(0.0, y, ref);
  SerialRhs serial(c.program);
  std::vector<double> got(y.size());
  serial.eval(0.0, y, got);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-9 * std::max(1.0, std::fabs(ref[i])));
  }
}

TEST(Interconnect, PresetsAreOrdered) {
  const auto sparc = Interconnect::sparc_center_2000();
  const auto parsytec = Interconnect::parsytec_gcpp();
  EXPECT_LT(sparc.latency_s, parsytec.latency_s);
  EXPECT_DOUBLE_EQ(sparc.latency_s, 4e-6);     // §4: 4 us per byte msg
  EXPECT_DOUBLE_EQ(parsytec.latency_s, 140e-6);  // §4: 140 us
  EXPECT_GT(parsytec.message_cost(448), parsytec.latency_s);
}

// -- virtual-time machine model ---------------------------------------------

TEST(SimulatedMachine, SerialCostIsOpsTimesSpeed) {
  const Compiled c = compile_bearing(4);
  MachineModel mm = MachineModel::sparc_center_2000();
  SimulatedMachine sim(c.program, mm);
  const SimTiming t = sim.time_serial_call();
  EXPECT_DOUBLE_EQ(t.total_seconds,
                   static_cast<double>(c.program.total_ops()) *
                       mm.per_op_seconds);
  EXPECT_EQ(t.messages, 0u);
}

TEST(SimulatedMachine, LowLatencySpeedsUpHighLatencyAt16) {
  const Compiled c = compile_bearing(10);
  SimulatedMachine sparc(c.program, MachineModel::sparc_center_2000());
  SimulatedMachine parsytec(c.program, MachineModel::parsytec_gcpp());
  const auto schedule = sched::lpt_schedule(sparc.task_costs(), 16);
  const double serial = sparc.time_serial_call().total_seconds;
  const double t_sparc = sparc.time_parallel_call(schedule).total_seconds;
  const double t_pars = parsytec.time_parallel_call(schedule).total_seconds;
  EXPECT_LT(t_sparc, serial);   // shared memory still wins at 16 workers
  EXPECT_LT(t_sparc, t_pars);   // low latency beats high latency
}

TEST(SimulatedMachine, DistributedPeaksThenDegrades) {
  // The Figure 12 shape: Parsytec throughput rises, peaks at a small
  // worker count, then falls off.
  const Compiled c = compile_bearing(10);
  SimulatedMachine sim(c.program, MachineModel::parsytec_gcpp());
  const auto costs = sim.task_costs();
  std::vector<double> cps;
  for (std::size_t w = 1; w <= 16; ++w) {
    cps.push_back(sim.time_parallel_call(sched::lpt_schedule(costs, w))
                      .calls_per_second());
  }
  const auto peak = std::max_element(cps.begin(), cps.end());
  const auto peak_idx = static_cast<std::size_t>(peak - cps.begin());
  EXPECT_GE(peak_idx, 1u);       // more than one worker helps...
  EXPECT_LE(peak_idx, 9u);       // ...but saturates early
  EXPECT_LT(cps.back(), *peak);  // and 16 workers is past the peak
}

TEST(SimulatedMachine, PhysicalLimitCreatesKnee) {
  const Compiled c = compile_bearing(10);
  MachineModel mm = MachineModel::sparc_center_2000();  // physical = 8
  SimulatedMachine sim(c.program, mm);
  const auto costs = sim.task_costs();
  const double at7 =
      sim.time_parallel_call(sched::lpt_schedule(costs, 7))
          .calls_per_second();
  const double at15 =
      sim.time_parallel_call(sched::lpt_schedule(costs, 15))
          .calls_per_second();
  EXPECT_GT(at7, at15);  // beyond the machine size, time-sharing hurts
}

TEST(SimulatedMachine, CommunicationAnalysisShrinksMessages) {
  const Compiled c = compile_bearing(6);
  MachineModel mm = MachineModel::parsytec_gcpp();
  SimulatedMachine all(c.program, mm, /*communication_analysis=*/false);
  SimulatedMachine needed(c.program, mm, /*communication_analysis=*/true);
  const auto schedule = sched::lpt_schedule(all.task_costs(), 4);
  EXPECT_LE(needed.time_parallel_call(schedule).bytes,
            all.time_parallel_call(schedule).bytes);
}

}  // namespace
}  // namespace omx::runtime
