// Dependency extraction and SCC partitioning (§2.1) on hand-built systems
// and the built-in models.
#include <gtest/gtest.h>

#include "omx/analysis/partition.hpp"
#include "omx/model/flatten.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/servo.hpp"
#include "omx/parser/parser.hpp"

namespace omx::analysis {
namespace {

model::FlatSystem flatten_src(expr::Context& ctx, const std::string& src) {
  model::Model m = parser::parse_model(src, ctx);
  return model::flatten(m);
}

TEST(Dependency, DirectStateDependencies) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1, y start 0;
    eq der(x) == y;
    eq der(y) == -x;
  end
  instance a : A;
end)");
  const DependencyInfo info = analyze_dependencies(f);
  ASSERT_EQ(info.deps.size(), 2u);
  EXPECT_EQ(info.deps[0], (std::vector<int>{1}));  // x' reads y
  EXPECT_EQ(info.deps[1], (std::vector<int>{0}));  // y' reads x
  EXPECT_TRUE(info.eq_graph.has_edge(1, 0));       // producer y -> consumer x
  EXPECT_TRUE(info.eq_graph.has_edge(0, 1));
}

TEST(Dependency, TransitiveThroughAlgebraicChain) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1, y start 2;
    var a, b;
    eq a == 2*y;
    eq b == a + 1;
    eq der(x) == b;       // depends on y through b -> a
    eq der(y) == -y;
  end
  instance i : A;
end)");
  const DependencyInfo info = analyze_dependencies(f);
  const int xi = f.state_index(ctx.symbol("i.x"));
  const int yi = f.state_index(ctx.symbol("i.y"));
  EXPECT_EQ(info.deps[static_cast<std::size_t>(xi)],
            (std::vector<int>{yi}));
}

TEST(Dependency, TimeUsageTracked) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 0, y start 0;
    var a;
    eq a == sin(time);
    eq der(x) == a;
    eq der(y) == -y;
  end
  instance i : A;
end)");
  const DependencyInfo info = analyze_dependencies(f);
  const int xi = f.state_index(ctx.symbol("i.x"));
  const int yi = f.state_index(ctx.symbol("i.y"));
  EXPECT_TRUE(info.uses_time[static_cast<std::size_t>(xi)]);
  EXPECT_FALSE(info.uses_time[static_cast<std::size_t>(yi)]);
}

TEST(Dependency, JacobianSparsityMatchesDeps) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1, y start 0, z start 0;
    eq der(x) == -x;
    eq der(y) == x + z;
    eq der(z) == y;
  end
  instance i : A;
end)");
  const DependencyInfo info = analyze_dependencies(f);
  const auto mask = jacobian_sparsity(info, 3);
  const auto xi = static_cast<std::size_t>(f.state_index(ctx.symbol("i.x")));
  const auto yi = static_cast<std::size_t>(f.state_index(ctx.symbol("i.y")));
  const auto zi = static_cast<std::size_t>(f.state_index(ctx.symbol("i.z")));
  EXPECT_TRUE(mask[xi][xi]);
  EXPECT_FALSE(mask[xi][yi]);
  EXPECT_TRUE(mask[yi][xi]);
  EXPECT_TRUE(mask[yi][zi]);
  EXPECT_TRUE(mask[zi][yi]);
  EXPECT_FALSE(mask[zi][zi]);
}

TEST(Partition, IndependentSubsystems) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class Pair
    var x start 1, y start 0;
    eq der(x) == y;
    eq der(y) == -x;
  end
  instance p[1..3] : Pair;
end)");
  const DependencyInfo info = analyze_dependencies(f);
  const Partition p = partition_by_scc(f, info);
  EXPECT_EQ(p.num_subsystems(), 3u);
  EXPECT_EQ(p.largest(), 2u);
  EXPECT_EQ(p.max_parallel_width(), 3u);
  EXPECT_EQ(p.pipeline_depth(), 1u);
}

TEST(Partition, PipelineChain) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class Chain
    var a start 1, b start 0, c start 0;
    eq der(a) == -a;
    eq der(b) == a - b;
    eq der(c) == b - c;
  end
  instance ch : Chain;
end)");
  const DependencyInfo info = analyze_dependencies(f);
  const Partition p = partition_by_scc(f, info);
  EXPECT_EQ(p.num_subsystems(), 3u);
  EXPECT_EQ(p.pipeline_depth(), 3u);
  EXPECT_EQ(p.max_parallel_width(), 1u);
  // a, b, c are self-dependent: none trivial.
  EXPECT_EQ(p.num_trivial(), 0u);
}

TEST(Partition, PureIntegratorIsTrivial) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var w start 1, th start 0;
    eq der(w) == -w;
    eq der(th) == w;   // no self-dependence, nothing depends on th
  end
  instance i : A;
end)");
  const DependencyInfo info = analyze_dependencies(f);
  const Partition p = partition_by_scc(f, info);
  EXPECT_EQ(p.num_subsystems(), 2u);
  EXPECT_EQ(p.num_trivial(), 1u);
}

TEST(Partition, ServoHasOneSccPerAxis) {
  expr::Context ctx;
  model::Model m = models::build_servo(ctx);
  model::FlatSystem f = model::flatten(m);
  const DependencyInfo info = analyze_dependencies(f);
  const Partition p = partition_by_scc(f, info);
  // 3 axes, each one closed loop of 4 states; th' = w feeds back via ref.
  EXPECT_EQ(f.num_states(), 12u);
  EXPECT_EQ(p.num_subsystems(), 3u);
  EXPECT_EQ(p.largest(), 4u);
  EXPECT_EQ(p.max_parallel_width(), 3u);
}

TEST(Partition, BearingIsOneBigSccPlusTheta) {
  expr::Context ctx;
  models::BearingConfig cfg;
  cfg.n_rollers = 6;
  model::FlatSystem f = model::flatten(models::build_bearing(ctx, cfg));
  const DependencyInfo info = analyze_dependencies(f);
  const Partition p = partition_by_scc(f, info);
  EXPECT_EQ(f.num_states(), 6u * 5u + 6u);
  ASSERT_EQ(p.num_subsystems(), 2u);  // Figure 6
  EXPECT_EQ(p.largest(), f.num_states() - 1);
  EXPECT_EQ(p.num_trivial(), 1u);
}

TEST(Partition, HydroDecomposesIntoGateSubsystems) {
  expr::Context ctx;
  model::FlatSystem f = model::flatten(models::build_hydro(ctx));
  const DependencyInfo info = analyze_dependencies(f);
  const Partition p = partition_by_scc(f, info);
  // 6 gate SCCs (angle, ip, act.pos) + dam + 6 turbines + lf + rip.
  EXPECT_EQ(p.num_subsystems(), 15u);
  EXPECT_EQ(p.largest(), 3u);
  EXPECT_GE(p.max_parallel_width(), 6u);
  EXPECT_GE(p.pipeline_depth(), 3u);
}

TEST(Partition, ReportMentionsEveryScc) {
  expr::Context ctx;
  model::FlatSystem f = model::flatten(models::build_hydro(ctx));
  const DependencyInfo info = analyze_dependencies(f);
  const Partition p = partition_by_scc(f, info);
  const std::string report = format_partition_report(f, p);
  EXPECT_NE(report.find("SCCs: 15"), std::string::npos);
  EXPECT_NE(report.find("dam.level"), std::string::npos);
}

}  // namespace
}  // namespace omx::analysis
