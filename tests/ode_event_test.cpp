// Event handling differential suite: localized event times pinned
// against analytic crossings for every solver method, cross-backend
// agreement through the pipeline, integrator restart behaviour (BDF
// Jacobian refresh after an event), terminal events, Zeno protection,
// and the event telemetry surface.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "omx/models/hybrid.hpp"
#include "omx/obs/recorder.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace omx::ode {
namespace {

/// Event rows are appended as a pre/post pair sharing the localized
/// time; every other accepted row is strictly increasing. Returns the
/// shared times.
std::vector<double> event_times(const Solution& s) {
  std::vector<double> out;
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    if (s.time(i) == s.time(i + 1)) {
      out.push_back(s.time(i));
    }
  }
  return out;
}

void expect_times_match(const std::vector<double>& got,
                        const std::vector<double>& want, double tol,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << label << " event " << i;
  }
}

struct MethodCase {
  Method method;
  double tol;  // event-time tolerance vs analytic
};

// The ball's flight arcs are quadratics, so every interpolant in play
// (DOPRI5 quartic, cubic Hermite, BDF Lagrange) represents them up to
// the solver's own state error; the per-method tolerance tracks that
// state error, not the interpolant order.
TEST(EventDiff, BouncingBallTimesMatchAnalyticAcrossMethods) {
  const models::BouncingBall cfg;
  const double tend = 2.2;
  const std::vector<double> want =
      models::bouncing_ball_bounce_times(cfg, tend);
  ASSERT_GE(want.size(), 3u);  // several bounces in range

  const MethodCase cases[] = {
      {Method::kExplicitEuler, 2e-2}, {Method::kRk4, 1e-8},
      {Method::kDopri5, 1e-7},        {Method::kAdamsPece, 1e-5},
      {Method::kBdf, 1e-3},           {Method::kLsodaLike, 1e-3},
  };
  for (const MethodCase& mc : cases) {
    const Problem p = models::bouncing_ball_problem(cfg, tend);
    SolverOptions o;
    o.dt = 1e-3;
    o.tol = {1e-9, 1e-9};
    const Solution s = solve(p, mc.method, o);
    expect_times_match(event_times(s), want, mc.tol, to_string(mc.method));
    EXPECT_EQ(s.stats.events, want.size()) << to_string(mc.method);
    EXPECT_EQ(s.stats.events_terminal, 0u) << to_string(mc.method);
    // Post-bounce velocity flips sign: the ball keeps bouncing, so the
    // final height stays in [0, h0].
    EXPECT_GE(s.final_state()[0], -1e-6) << to_string(mc.method);
  }
}

TEST(EventDiff, CoulombOscillatorStopsAtVelocityZeros) {
  const models::CoulombOscillator cfg;
  const double tend = 10.0;
  const std::vector<double> want = models::coulomb_event_times(cfg, tend);
  ASSERT_GE(want.size(), 2u);
  for (const Method m : {Method::kDopri5, Method::kAdamsPece}) {
    const Problem p = models::coulomb_oscillator_problem(cfg, tend);
    SolverOptions o;
    o.tol = {1e-10, 1e-10};
    const Solution s = solve(p, m, o);
    expect_times_match(event_times(s), want, 1e-5, to_string(m));
    // The friction mode flips at every event.
    EXPECT_EQ(s.final_state()[2], want.size() % 2 == 0 ? -1.0 : 1.0);
  }
}

TEST(EventDiff, EventTimesAgreeAcrossExecutionBackends) {
  // Guards and resets evaluate through the expression pool regardless of
  // how the RHS runs, so every backend localizes the same crossings.
  pipeline::CompiledModel cm = pipeline::compile_model(
      [](expr::Context& ctx) { return models::build_bouncing_ball(ctx); });
  const double tend = 1.5;
  const models::BouncingBall cfg;  // matches bouncing_ball_source()
  const std::vector<double> want =
      models::bouncing_ball_bounce_times(cfg, tend);
  ASSERT_FALSE(want.empty());

  std::vector<std::vector<double>> per_backend;
  for (const exec::Backend b : {exec::Backend::kReference,
                                exec::Backend::kInterp,
                                exec::Backend::kNative}) {
    const Problem p = cm.make_problem(b, 0.0, tend);
    ASSERT_NE(p.events, nullptr);
    SolverOptions o;
    o.tol = {1e-10, 1e-10};
    const Solution s = solve(p, Method::kDopri5, o);
    per_backend.push_back(event_times(s));
    expect_times_match(per_backend.back(), want, 1e-7,
                       std::string("backend ") + std::to_string(int(b)));
  }
  for (std::size_t i = 1; i < per_backend.size(); ++i) {
    ASSERT_EQ(per_backend[i].size(), per_backend[0].size());
    for (std::size_t k = 0; k < per_backend[0].size(); ++k) {
      EXPECT_NEAR(per_backend[i][k], per_backend[0][k], 1e-9);
    }
  }
}

TEST(EventRestart, BdfReevaluatesJacobianAfterEvent) {
  // Switching chemistry turns stiff at the event (k: 1 -> 1e4); a BDF
  // restart that kept the pre-event Jacobian would mis-iterate Newton.
  // The flight recorder pins the refresh: a kJacEvaluate must land at or
  // after the localized event time.
  const models::SwitchingChemistry cfg;
  const double ts = models::switching_chemistry_switch_time(cfg);
  const Problem p = models::switching_chemistry_problem(cfg, ts + 0.3);
  SolverOptions o;
  o.tol = {1e-8, 1e-10};

  obs::Recorder& rec = obs::Recorder::global();
  rec.start();
  const Solution s = solve(p, Method::kBdf, o);
  rec.stop();

  ASSERT_EQ(s.stats.events, 1u);
  const std::vector<double> times = event_times(s);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_NEAR(times[0], ts, 1e-4);

  bool event_seen = false;
  bool jac_after_event = false;
  for (const obs::StepEvent& ev : rec.events()) {
    if (ev.kind == obs::StepEventKind::kEvent) {
      event_seen = true;
    } else if (event_seen &&
               ev.kind == obs::StepEventKind::kJacEvaluate) {
      jac_after_event = true;
    }
  }
  EXPECT_TRUE(event_seen);
  EXPECT_TRUE(jac_after_event);
  // The fast mode decays everything within the tail window.
  EXPECT_LT(s.final_state()[0], cfg.threshold);
}

TEST(EventRestart, StiffSwitchSurvivesAllStiffMethods) {
  const models::SwitchingChemistry cfg;
  const double ts = models::switching_chemistry_switch_time(cfg);
  for (const Method m : {Method::kBdf, Method::kLsodaLike}) {
    const Problem p = models::switching_chemistry_problem(cfg, ts + 0.5);
    SolverOptions o;
    o.tol = {1e-8, 1e-10};
    const Solution s = solve(p, m, o);
    EXPECT_EQ(s.stats.events, 1u) << to_string(m);
    EXPECT_NEAR(event_times(s).at(0), ts, 1e-4) << to_string(m);
    EXPECT_GE(s.final_state()[0], 0.0) << to_string(m);
  }
}

TEST(EventTerminal, StopsAtFirstImpactEverywhere) {
  const models::BouncingBall cfg;
  const double t1 = std::sqrt(2.0 * cfg.h0 / cfg.g);
  for (const Method m : {Method::kExplicitEuler, Method::kRk4,
                         Method::kDopri5, Method::kAdamsPece, Method::kBdf,
                         Method::kLsodaLike}) {
    const Problem p =
        models::bouncing_ball_problem(cfg, 5.0, /*terminal=*/true);
    SolverOptions o;
    o.dt = 1e-3;
    o.tol = {1e-9, 1e-9};
    const Solution s = solve(p, m, o);
    EXPECT_EQ(s.stats.events, 1u) << to_string(m);
    EXPECT_EQ(s.stats.events_terminal, 1u) << to_string(m);
    EXPECT_NEAR(s.final_time(), t1, 5e-3) << to_string(m);
    EXPECT_LT(s.final_time(), 5.0) << to_string(m);
  }
}

TEST(EventDirection, FiltersRespectCrossingSign) {
  // Guard sin(t) on y' = 0: rising zeros at 0, 2pi, ...; falling at pi,
  // 3pi. Priming at t=0 caches the exact zero, which must not fire.
  auto make = [](EventDirection dir) {
    Problem p;
    p.n = 1;
    p.y0 = {0.0};
    p.t0 = 0.0;
    p.tend = 7.0;  // covers pi, 2pi
    p.set_rhs([](double, std::span<const double>, std::span<double> f) {
      f[0] = 0.0;
    });
    EventSpec spec;
    EventFunction f;
    f.guard = [](double t, std::span<const double>) { return std::sin(t); };
    f.direction = dir;
    spec.functions.push_back(std::move(f));
    p.events = std::make_shared<const EventSpec>(std::move(spec));
    return p;
  };
  const double pi = std::acos(-1.0);
  SolverOptions o;
  o.tol = {1e-10, 1e-10};
  o.hmax = 0.5;  // keep steps shorter than the half-period

  const Solution both = solve(make(EventDirection::kBoth),
                              Method::kDopri5, o);
  expect_times_match(event_times(both), {pi, 2.0 * pi}, 1e-8, "both");
  const Solution falling = solve(make(EventDirection::kFalling),
                                 Method::kDopri5, o);
  expect_times_match(event_times(falling), {pi}, 1e-8, "falling");
  const Solution rising = solve(make(EventDirection::kRising),
                                Method::kDopri5, o);
  expect_times_match(event_times(rising), {2.0 * pi}, 1e-8, "rising");
}

TEST(EventZeno, AccumulationPointThrowsInsteadOfSpinning) {
  const models::BouncingBall cfg;
  // The bounce times form a geometric series accumulating at
  // t1 * (1 + e) / (1 - e); integrating past it must trip the guard.
  const double t_acc =
      std::sqrt(2.0 * cfg.h0 / cfg.g) * (1.0 + cfg.e) / (1.0 - cfg.e);
  Problem p = models::bouncing_ball_problem(cfg, t_acc + 0.5);
  auto spec = std::make_shared<EventSpec>();
  spec->functions = p.events->functions;
  spec->max_events = 40;
  p.events = spec;
  SolverOptions o;
  o.tol = {1e-12, 1e-12};
  EXPECT_THROW(solve(p, Method::kDopri5, o), omx::Error);
}

TEST(EventTelemetry, CountersPublishFiredAndTerminal) {
  obs::set_enabled(true);
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t fired0 = reg.counter("ode.events_fired").value();
  const std::uint64_t term0 = reg.counter("ode.events_terminal").value();

  const models::BouncingBall cfg;
  const Solution s = solve(
      models::bouncing_ball_problem(cfg, 2.2), Method::kDopri5, {});
  const Solution st = solve(
      models::bouncing_ball_problem(cfg, 5.0, true), Method::kDopri5, {});

  EXPECT_EQ(reg.counter("ode.events_fired").value() - fired0,
            s.stats.events + st.stats.events);
  EXPECT_EQ(reg.counter("ode.events_terminal").value() - term0, 1u);
}

}  // namespace
}  // namespace omx::ode
