// Flattening: inheritance, composition, instance arrays, parameter
// binding, equation classification and the diagnostic paths.
#include <gtest/gtest.h>

#include "omx/model/flatten.hpp"
#include "omx/parser/parser.hpp"

namespace omx::model {
namespace {

FlatSystem flatten_src(expr::Context& ctx, const std::string& src) {
  Model m = parser::parse_model(src, ctx);
  return flatten(m);
}

TEST(Flatten, ScalarInstanceQualifiesNames) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 2;
    eq der(x) == -x;
  end
  instance a : A;
end)");
  ASSERT_EQ(f.num_states(), 1u);
  EXPECT_EQ(f.state_name(0), "a.x");
  EXPECT_DOUBLE_EQ(f.states()[0].start, 2.0);
}

TEST(Flatten, InstanceArrayExpandsElements) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class A(k)
    var x start k;
    eq der(x) == -k*x;
  end
  instance a[1..3] : A(index * 10);
end)");
  ASSERT_EQ(f.num_states(), 3u);
  EXPECT_EQ(f.state_name(0), "a[1].x");
  EXPECT_EQ(f.state_name(2), "a[3].x");
  EXPECT_DOUBLE_EQ(f.states()[0].start, 10.0);
  EXPECT_DOUBLE_EQ(f.states()[2].start, 30.0);
}

TEST(Flatten, InheritanceMergesAndSubstitutesFormals) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class Base(k)
    param g = 2*k;
    var x start 1;
    eq der(x) == -g*x;
  end
  class Derived(q) inherits Base(q + 1)
    var y start 0;
    eq der(y) == x;
  end
  instance d : Derived(4);
end)");
  ASSERT_EQ(f.num_states(), 2u);
  // g = 2*(4+1) = 10.
  EXPECT_DOUBLE_EQ(f.parameter_value(ctx.symbol("d.g")), 10.0);
}

TEST(Flatten, DerivedParameterOverridesBase) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class Base
    param k = 1;
    var x;
    eq der(x) == -k*x;
  end
  class Variant inherits Base
    param k = 7;
  end
  instance v : Variant;
end)");
  EXPECT_DOUBLE_EQ(f.parameter_value(ctx.symbol("v.k")), 7.0);
}

TEST(Flatten, CompositionNestsPrefixes) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class Leaf
    var v start 1;
    var drive;
    eq der(v) == drive - v;
  end
  class Node
    part p : Leaf;
    var x start 0;
    eq der(x) == p.v;
    eq p.drive == 2*x;
  end
  instance n : Node;
end)");
  EXPECT_GE(f.num_states(), 2u);
  EXPECT_GE(f.state_index(ctx.symbol("n.p.v")), 0);
  EXPECT_GE(f.state_index(ctx.symbol("n.x")), 0);
  EXPECT_GE(f.algebraic_index(ctx.symbol("n.p.drive")), 0);
}

TEST(Flatten, CrossInstanceReferences) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class Source
    var s start 5;
    eq der(s) == -s;
  end
  class Sink
    var x start 0;
    eq der(x) == src.s - x;
  end
  instance src : Source;
  instance snk : Sink;
end)");
  // snk.x's RHS references src.s: evaluate to check wiring.
  std::vector<double> y{5.0, 0.0}, ydot(2);
  if (f.state_name(0) != "src.s") {
    std::swap(y[0], y[1]);
  }
  f.eval_rhs(0.0, y, ydot);
  const int snk = f.state_index(ctx.symbol("snk.x"));
  EXPECT_DOUBLE_EQ(ydot[static_cast<std::size_t>(snk)], 5.0);
}

TEST(Flatten, ParametersMayReferenceParameters) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    param a = 2;
    param b = a * 3;
    param c = b + a;
    var x;
    eq der(x) == c*x;
  end
  instance i : A;
end)");
  EXPECT_DOUBLE_EQ(f.parameter_value(ctx.symbol("i.c")), 8.0);
}

TEST(Flatten, AlgebraicsAreTopologicallyOrdered) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    var a, b;
    eq b == a + 1;        // declared before a is defined
    eq a == 2*x;
    eq der(x) == b;
  end
  instance i : A;
end)");
  ASSERT_EQ(f.num_algebraics(), 2u);
  // After finalize, a must precede b.
  EXPECT_EQ(ctx.names.name(f.algebraics()[0].name), "i.a");
  EXPECT_EQ(ctx.names.name(f.algebraics()[1].name), "i.b");
  std::vector<double> y{3.0}, ydot(1);
  f.eval_rhs(0.0, y, ydot);
  EXPECT_DOUBLE_EQ(ydot[0], 7.0);
}

TEST(Flatten, TimeIsAvailableEverywhere) {
  expr::Context ctx;
  FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 0;
    eq der(x) == time * 2;
  end
  instance i : A;
end)");
  std::vector<double> y{0.0}, ydot(1);
  f.eval_rhs(3.0, y, ydot);
  EXPECT_DOUBLE_EQ(ydot[0], 6.0);
}

// -- diagnostics -------------------------------------------------------------

TEST(FlattenDiag, AlgebraicLoop) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A
    var a, b, x;
    eq a == b + 1;
    eq b == a - 1;
    eq der(x) == a;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, UndeclaredSymbol) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A
    var x;
    eq der(x) == ghost;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, VariableWithoutEquation) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A
    var x, orphan;
    eq der(x) == -x;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, TwoEquationsForOneVariable) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A
    var x;
    eq der(x) == -x;
    eq der(x) == x;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, BothDerAndAlgebraic) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A
    var x;
    eq der(x) == -x;
    eq x == 3;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, WrongArgumentCount) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A(k)
    var x;
    eq der(x) == -k*x;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, UnknownClass) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  instance i : Nowhere;
end)"),
               omx::Error);
}

TEST(FlattenDiag, InheritanceCycle) {
  expr::Context ctx;
  Model m("M", ctx);
  m.add_class("A").set_base("B", {});
  m.add_class("B").set_base("A", {});
  Instance i;
  i.name = "i";
  i.class_name = "A";
  m.add_instance(std::move(i));
  EXPECT_THROW(flatten(m), omx::Error);
}

TEST(FlattenDiag, StartValueReferencingStateRejected) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    var y start x;
    eq der(x) == -x;
    eq der(y) == -y;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, AlgebraicWithStartValueRejected) {
  expr::Context ctx;
  EXPECT_THROW(flatten_src(ctx, R"(
model M
  class A
    var x;
    var a start 1;
    eq der(x) == a;
    eq a == 2*x;
  end
  instance i : A;
end)"),
               omx::Error);
}

TEST(FlattenDiag, DuplicateInstanceName) {
  expr::Context ctx;
  Model m("M", ctx);
  m.add_class("A");
  Instance i1;
  i1.name = "dup";
  i1.class_name = "A";
  m.add_instance(std::move(i1));
  Instance i2;
  i2.name = "dup";
  i2.class_name = "A";
  EXPECT_THROW(m.add_instance(std::move(i2)), omx::Error);
}

TEST(FlattenDiag, EmptyArrayRange) {
  expr::Context ctx;
  Model m("M", ctx);
  m.add_class("A");
  Instance i;
  i.name = "a";
  i.class_name = "A";
  i.is_array = true;
  i.lo = 5;
  i.hi = 2;
  EXPECT_THROW(m.add_instance(std::move(i)), omx::Error);
}

}  // namespace
}  // namespace omx::model
