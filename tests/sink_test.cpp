// TrajectorySink streaming API: edge cases of the chunk protocol
// (zero-step solves, boundary-exact trajectories, sink reuse, ensemble
// retirement mid-chunk) and the differential pin that the batched
// native/interp kernels reproduce their scalar counterparts bitwise on
// every bundled model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace omx::ode {
namespace {

pipeline::CompiledModel oscillator_model() {
  return pipeline::compile_model(models::build_oscillator);
}

/// Sink that records the full chunk protocol: every commit's
/// (scenario, rows, final) triple, every finish, and the reassembled
/// per-scenario trajectory. Thread-safe so it can back solve_ensemble.
class ProtocolSink final : public TrajectorySink {
 public:
  struct Commit {
    std::uint32_t scenario;
    std::size_t rows;
    bool final;
  };

  explicit ProtocolSink(std::size_t chunk_rows, std::size_t num_scenarios = 1)
      : rows_(chunk_rows), trajs_(num_scenarios), stats_(num_scenarios),
        finishes_(num_scenarios, 0) {}

  TrajectoryChunk* acquire(std::uint32_t scenario, std::size_t n) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++acquires_;
    TrajectoryChunk* c;
    if (!free_.empty()) {
      c = free_.back();
      free_.pop_back();
    } else {
      all_.push_back(std::make_unique<TrajectoryChunk>());
      c = all_.back().get();
    }
    c->reset(scenario, n, rows_);
    return c;
  }

  void commit(TrajectoryChunk* chunk) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    commits_.push_back({chunk->scenario, chunk->size, chunk->final});
    Traj& tr = trajs_[chunk->scenario];
    for (std::size_t i = 0; i < chunk->size; ++i) {
      tr.times.push_back(chunk->times[i]);
      const auto row = chunk->row_view(i);
      tr.states.insert(tr.states.end(), row.begin(), row.end());
    }
    free_.push_back(chunk);
  }

  void finish(std::uint32_t scenario, const SolverStats& stats) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++finishes_[scenario];
    stats_[scenario] = stats;
  }

  struct Traj {
    std::vector<double> times;
    std::vector<double> states;
  };

  const Traj& traj(std::size_t s = 0) const { return trajs_[s]; }
  const SolverStats& stats(std::size_t s = 0) const { return stats_[s]; }
  int finishes(std::size_t s = 0) const { return finishes_[s]; }
  const std::vector<Commit>& commits() const { return commits_; }
  std::size_t acquires() const { return acquires_; }
  std::size_t chunks_allocated() const { return all_.size(); }

  void clear_counters() {
    commits_.clear();
    acquires_ = 0;
    for (auto& t : trajs_) {
      t.times.clear();
      t.states.clear();
    }
    for (auto& f : finishes_) {
      f = 0;
    }
  }

 private:
  std::mutex mutex_;
  std::size_t rows_;
  std::vector<std::unique_ptr<TrajectoryChunk>> all_;
  std::vector<TrajectoryChunk*> free_;
  std::vector<Commit> commits_;
  std::vector<Traj> trajs_;
  std::vector<SolverStats> stats_;
  std::vector<int> finishes_;
  std::size_t acquires_ = 0;
};

/// Bitwise row-for-row check of a reassembled stream against a Solution
/// (whose storage is only reachable through the time()/state() accessors).
void expect_traj_eq(const ProtocolSink::Traj& tr, const Solution& sol) {
  ASSERT_EQ(tr.times.size(), sol.size());
  if (sol.size() == 0) {
    return;
  }
  const std::size_t n = tr.states.size() / tr.times.size();
  for (std::size_t i = 0; i < sol.size(); ++i) {
    EXPECT_EQ(tr.times[i], sol.time(i)) << "row " << i;
    const std::span<const double> row = sol.state(i);
    ASSERT_EQ(row.size(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(tr.states[i * n + j], row[j]) << "row " << i << " slot " << j;
    }
  }
}

void expect_solutions_eq(const Solution& a, const Solution& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.time(i), b.time(i)) << "row " << i;
    const std::span<const double> ra = a.state(i);
    const std::span<const double> rb = b.state(i);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j], rb[j]) << "row " << i << " slot " << j;
    }
  }
}

TEST(SinkEdge, ZeroStepSolveDeliversInitialRowAndFinish) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.3, 0.3);  // t0 == tend
  ProtocolSink sink(/*chunk_rows=*/8);
  const SolverStats stats = solve(p, Method::kRk4, {}, sink);

  EXPECT_EQ(stats.steps, 0u);
  EXPECT_EQ(sink.finishes(), 1);
  ASSERT_EQ(sink.traj().times.size(), 1u);  // just the initial state
  EXPECT_EQ(sink.traj().times[0], 0.3);
  ASSERT_EQ(sink.commits().size(), 1u);
  EXPECT_TRUE(sink.commits()[0].final);
}

TEST(SinkEdge, ChunkBoundaryExactlyAtTendOmitsFinalFlag) {
  pipeline::CompiledModel cm = oscillator_model();
  // Fixed-step: rows = steps + 1 (initial row). 7 steps + 1 = 8 rows =
  // exactly two 4-row chunks, so the tail chunk commits *full*, and the
  // final flag never fires — finish() is the only end-of-stream signal.
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.7);
  SolverOptions o;
  o.dt = 0.1;
  ProtocolSink sink(/*chunk_rows=*/4);
  const SolverStats stats = solve(p, Method::kRk4, o, sink);

  EXPECT_EQ(stats.steps, 7u);
  ASSERT_EQ(sink.traj().times.size(), 8u);
  ASSERT_EQ(sink.commits().size(), 2u);
  for (const auto& c : sink.commits()) {
    EXPECT_EQ(c.rows, 4u);
    EXPECT_FALSE(c.final) << "boundary-exact trajectory must not flag final";
  }
  EXPECT_EQ(sink.finishes(), 1);
  EXPECT_EQ(sink.traj().times.back(), p.tend);
}

TEST(SinkEdge, PartialTailChunkCarriesFinalFlag) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.5);
  SolverOptions o;
  o.dt = 0.1;  // 5 steps + initial = 6 rows = 4-row chunk + 2-row tail
  ProtocolSink sink(/*chunk_rows=*/4);
  solve(p, Method::kRk4, o, sink);

  ASSERT_EQ(sink.commits().size(), 2u);
  EXPECT_FALSE(sink.commits()[0].final);
  EXPECT_EQ(sink.commits()[0].rows, 4u);
  EXPECT_TRUE(sink.commits()[1].final);
  EXPECT_EQ(sink.commits()[1].rows, 2u);
}

TEST(SinkEdge, SinkReusedAcrossSolvesRecyclesChunks) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 1.0);
  SolverOptions o;
  o.dt = 1e-2;
  ProtocolSink sink(/*chunk_rows=*/16);
  solve(p, Method::kRk4, o, sink);
  const auto first_times = sink.traj().times;
  const auto first_states = sink.traj().states;
  const std::size_t allocated_after_first = sink.chunks_allocated();
  ASSERT_FALSE(first_times.empty());

  sink.clear_counters();
  solve(p, Method::kRk4, o, sink);

  // Same problem, same sink: identical stream, and the second solve
  // reuses the first solve's chunks instead of allocating fresh ones.
  EXPECT_EQ(sink.traj().times, first_times);
  EXPECT_EQ(sink.traj().states, first_states);
  EXPECT_EQ(sink.finishes(), 1);
  EXPECT_EQ(sink.chunks_allocated(), allocated_after_first);
}

TEST(SinkEdge, SolutionSinkReuseAfterTake) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 1.0);
  SolverOptions o;
  o.dt = 1e-2;

  SolutionSink sink;
  solve(p, Method::kRk4, o, sink);
  const Solution a = sink.take();
  solve(p, Method::kRk4, o, sink);
  const Solution b = sink.take();

  expect_solutions_eq(a, b);
}

TEST(SinkEdge, AdaptiveSolveMatchesSolutionOverloadRowForRow) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 2.0);
  ProtocolSink sink(/*chunk_rows=*/5);  // odd size to exercise splits
  const SolverStats ss = solve(p, Method::kDopri5, {}, sink);
  const Solution sol = solve(p, Method::kDopri5, {});

  expect_traj_eq(sink.traj(), sol);
  EXPECT_EQ(ss.steps, sol.stats.steps);
  EXPECT_EQ(ss.rhs_calls, sol.stats.rhs_calls);
}

TEST(SinkEnsemble, RetireMidChunkFlushesPartialChunksPerScenario) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.45);
  SolverOptions o;
  o.dt = 0.1;  // 5 steps (last clipped) + initial = 6 rows per scenario

  EnsembleSpec spec;
  for (int s = 0; s < 3; ++s) {
    spec.initial_states.push_back({1.0 + 0.1 * s, 0.0});
  }
  spec.workers = 2;
  spec.max_batch = 2;

  // 6 rows vs 4-row chunks: every scenario retires holding a 2-row
  // partial chunk, which must be flushed with the final flag set.
  ProtocolSink sink(/*chunk_rows=*/4, /*num_scenarios=*/3);
  solve_ensemble(p, Method::kRk4, o, spec, sink);

  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sink.finishes(s), 1) << "scenario " << s;
    EXPECT_EQ(sink.traj(s).times.size(), 6u) << "scenario " << s;
    EXPECT_EQ(sink.traj(s).times.back(), p.tend) << "scenario " << s;
  }
  std::size_t finals = 0;
  for (const auto& c : sink.commits()) {
    if (c.final) {
      ++finals;
      EXPECT_EQ(c.rows, 2u);
    }
  }
  EXPECT_EQ(finals, 3u);  // one partial tail per scenario

  // The streamed rows are bitwise the per-scenario solo solves.
  for (std::size_t s = 0; s < 3; ++s) {
    Problem q = p;
    q.y0 = spec.initial_states[s];
    const Solution solo = solve(q, Method::kRk4, o);
    SCOPED_TRACE("scenario " + std::to_string(s));
    expect_traj_eq(sink.traj(s), solo);
  }
}

TEST(SinkEnsemble, CollectSinkMatchesEnsembleResult) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 1.0);

  EnsembleSpec spec;
  for (int s = 0; s < 5; ++s) {
    spec.initial_states.push_back({1.0 + 0.05 * s, 0.1 * s});
  }
  spec.workers = 2;
  spec.max_batch = 4;

  const EnsembleResult res = solve_ensemble(p, Method::kDopri5, {}, spec);
  EnsembleCollectSink sink(spec.initial_states.size());
  solve_ensemble(p, Method::kDopri5, {}, spec, sink);
  const std::vector<Solution> streamed = sink.take();

  ASSERT_EQ(streamed.size(), res.solutions.size());
  for (std::size_t s = 0; s < streamed.size(); ++s) {
    SCOPED_TRACE("scenario " + std::to_string(s));
    expect_solutions_eq(streamed[s], res.solutions[s]);
  }
}

TEST(SinkEnsemble, StatsOnlySinkKeepsFinalStateAndStats) {
  pipeline::CompiledModel cm = oscillator_model();
  Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 1.0);

  EnsembleSpec spec;
  spec.initial_states.push_back({1.2, 0.0});
  spec.initial_states.push_back({0.8, 0.3});
  spec.workers = 1;
  spec.max_batch = 2;

  StatsOnlySink sink(spec.initial_states.size());
  solve_ensemble(p, Method::kDopri5, {}, spec, sink);

  for (std::size_t s = 0; s < 2; ++s) {
    Problem q = p;
    q.y0 = spec.initial_states[s];
    const Solution solo = solve(q, Method::kDopri5, {});
    EXPECT_EQ(sink.final_time(s), solo.final_time()) << "scenario " << s;
    ASSERT_EQ(sink.final_state(s).size(), solo.final_state().size());
    for (std::size_t i = 0; i < solo.final_state().size(); ++i) {
      EXPECT_EQ(sink.final_state(s)[i], solo.final_state()[i])
          << "scenario " << s << " slot " << i;
    }
    EXPECT_EQ(sink.stats(s).steps, solo.stats.steps) << "scenario " << s;
  }
}

// ---------------------------------------------------------------------------
// Differential pin: batched kernels reproduce scalar kernels bitwise on
// every bundled model, for both backends, at several batch widths. This
// is the lane-independence contract the whole vectorization effort
// rests on (interp batch == interp scalar, native batch == native
// scalar; the two backends agree to 1e-12 but not bitwise, since the
// native transcendentals are the embedded vmath runtime, not libm).

pipeline::KernelOptions cache_opts() {
  pipeline::KernelOptions ko;
  ko.native.cache_dir =
      (std::filesystem::temp_directory_path() / "omx-test-native-cache")
          .string();
  return ko;
}

void expect_batch_matches_scalar_bitwise(pipeline::CompiledModel cm,
                                         exec::Backend backend) {
  const exec::KernelInstance inst = cm.make_kernel(backend, cache_opts());
  if (inst.backend() != backend) {
    GTEST_SKIP() << "backend unavailable";
  }
  const exec::RhsKernel& k = inst.kernel();
  ASSERT_TRUE(k.has_batch());
  const std::size_t n = cm.n();

  for (const std::size_t nb : {1u, 3u, 4u, 8u, 17u}) {
    std::vector<double> ts(nb);
    std::vector<double> y_soa(n * nb), f_soa(n * nb);
    for (std::size_t j = 0; j < nb; ++j) {
      ts[j] = 0.01 * static_cast<double>(j);
      for (std::size_t i = 0; i < n; ++i) {
        y_soa[i * nb + j] = cm.flat->states()[i].start +
                            1e-3 * static_cast<double>((i + 3 * j) % 11);
      }
    }
    k.eval_batch(0, nb, ts.data(), y_soa.data(), f_soa.data());

    std::vector<double> y(n), f(n);
    for (std::size_t j = 0; j < nb; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        y[i] = y_soa[i * nb + j];
      }
      k(ts[j], y, f);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(f_soa[i * nb + j], f[i])
            << "width " << nb << " lane " << j << " slot " << i;
      }
    }
  }
}

struct ModelCase {
  const char* name;
  pipeline::ModelBuilder builder;
};

std::vector<ModelCase> all_models() {
  std::vector<ModelCase> cases;
  cases.push_back({"oscillator", models::build_oscillator});
  cases.push_back({"bearing2d", [](expr::Context& ctx) {
                     models::BearingConfig cfg;
                     cfg.n_rollers = 5;
                     return models::build_bearing(ctx, cfg);
                   }});
  cases.push_back({"hydro", models::build_hydro});
  cases.push_back({"heat1d", [](expr::Context& ctx) {
                     models::Heat1dConfig cfg;
                     cfg.n_cells = 16;
                     return models::build_heat1d(ctx, cfg);
                   }});
  return cases;
}

TEST(SimdDifferential, InterpBatchMatchesScalarBitwiseOnAllModels) {
  for (const auto& mc : all_models()) {
    SCOPED_TRACE(mc.name);
    expect_batch_matches_scalar_bitwise(pipeline::compile_model(mc.builder),
                                        exec::Backend::kInterp);
  }
}

TEST(SimdDifferential, NativeBatchMatchesScalarBitwiseOnAllModels) {
  for (const auto& mc : all_models()) {
    SCOPED_TRACE(mc.name);
    pipeline::CompiledModel cm = pipeline::compile_model(mc.builder);
    const exec::KernelInstance probe =
        cm.make_kernel(exec::Backend::kNative, cache_opts());
    if (probe.backend() != exec::Backend::kNative) {
      GTEST_SKIP() << "no host compiler; native backend unavailable";
    }
    expect_batch_matches_scalar_bitwise(std::move(cm),
                                        exec::Backend::kNative);
  }
}

}  // namespace
}  // namespace omx::ode
