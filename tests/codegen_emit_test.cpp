// Text emitters: structure of the generated Fortran 90 / C++, line and
// CSE statistics, and the parallel/serial code-size contrast of §3.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "omx/codegen/code_printer.hpp"
#include "omx/model/flatten.hpp"
#include "omx/codegen/cpp_emit.hpp"
#include "omx/codegen/fortran.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/models/hybrid.hpp"
#include "omx/parser/parser.hpp"

namespace omx::codegen {
namespace {

model::FlatSystem flatten_src(expr::Context& ctx, const std::string& src) {
  model::Model m = parser::parse_model(src, ctx);
  return model::flatten(m);
}

struct Prepared {
  AssignmentSet set;
  TaskPlan plan;
};

Prepared prepare(const model::FlatSystem& f, std::size_t min_ops = 0) {
  Prepared p;
  p.set = build_assignments(f);
  TaskPlanOptions opts;
  opts.min_ops_per_task = min_ops;
  p.plan = plan_tasks(f, p.set, opts);
  return p;
}

constexpr const char* kOscillator = R"(
model M
  class A
    var x start 1, y start 0;
    eq der(x) == y;
    eq der(y) == -x;
  end
  instance osc : A;
end)";

TEST(CodePrinter, FortranSpellsOperators) {
  expr::Context ctx;
  using expr::Ex;
  const Ex x = ctx.var("x");
  EXPECT_EQ(to_code(ctx.pool, ctx.names, pow(x, 3.0).id(),
                    Lang::kFortran90),
            "x**3.0_dp");
  EXPECT_EQ(to_code(ctx.pool, ctx.names, pow(x, 3.0).id(), Lang::kCxx),
            "std::pow(x, 3.0)");
  EXPECT_EQ(to_code(ctx.pool, ctx.names, abs(x).id(), Lang::kFortran90),
            "abs(x)");
  EXPECT_EQ(to_code(ctx.pool, ctx.names, abs(x).id(), Lang::kCxx),
            "std::fabs(x)");
  EXPECT_EQ(to_code(ctx.pool, ctx.names, sign(x).id(), Lang::kCxx),
            "omx_sign(x)");
  EXPECT_EQ(to_code(ctx.pool, ctx.names, max(x, 0.0).id(), Lang::kCxx),
            "std::fmax(x, 0.0)");
}

TEST(CodePrinter, SanitizesIdentifiers) {
  EXPECT_EQ(sanitize_identifier("w[3].contact.fn"), "w_3__contact_fn");
  EXPECT_EQ(sanitize_identifier("plain"), "plain");
  EXPECT_EQ(sanitize_identifier("3bad"), "v3bad");
}

TEST(FortranEmit, ParallelHasSelectCasePerTask) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kOscillator);
  const Prepared p = prepare(f);
  const EmitResult r = emit_fortran_parallel(f, p.plan);
  EXPECT_NE(r.code.find("subroutine RHS(workerid, t, yin, yout)"),
            std::string::npos);
  EXPECT_NE(r.code.find("select case (workerid)"), std::string::npos);
  EXPECT_NE(r.code.find("case (1)"), std::string::npos);
  EXPECT_NE(r.code.find("case (2)"), std::string::npos);
  EXPECT_NE(r.code.find("osc_xdot = osc_y"), std::string::npos);
  EXPECT_NE(r.code.find("yout(1) = osc_xdot"), std::string::npos);
}

TEST(FortranEmit, HelpersEmitStartValuesAndReader) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kOscillator);
  const Prepared p = prepare(f);
  const EmitResult r = emit_fortran_parallel(f, p.plan);
  EXPECT_NE(r.code.find("subroutine set_start_values"), std::string::npos);
  EXPECT_NE(r.code.find("subroutine read_start_values"), std::string::npos);
  EXPECT_NE(r.code.find("case ('osc.x')"), std::string::npos);
}

TEST(FortranEmit, CountsLinesAndDeclarations) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kOscillator);
  const Prepared p = prepare(f);
  const EmitResult r = emit_fortran_parallel(f, p.plan);
  const std::size_t newline_count =
      static_cast<std::size_t>(std::count(r.code.begin(), r.code.end(),
                                          '\n'));
  EXPECT_EQ(r.total_lines, newline_count);
  EXPECT_GT(r.decl_lines, 0u);
  EXPECT_LT(r.decl_lines, r.total_lines);
}

TEST(FortranEmit, SerialIsSmallerThanParallelWhenSharing) {
  // Same expensive expression in many equations: per-task CSE cannot share
  // it, global CSE can (§3.3).
  expr::Context ctx;
  std::string body;
  for (int i = 1; i <= 6; ++i) {
    body += "    var s" + std::to_string(i) + " start 1;\n";
    body += "    eq der(s" + std::to_string(i) +
            ") == sin(q)*exp(q)*sqrt(q*q + 2) - s" + std::to_string(i) +
            ";\n";
  }
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var q start 0.5;
    eq der(q) == -q;
)" + body + R"(
  end
  instance i : A;
end)");
  const Prepared p = prepare(f);
  const EmitResult par = emit_fortran_parallel(f, p.plan, {1, false});
  const EmitResult ser = emit_fortran_serial(f, p.set, {1, false});
  EXPECT_LT(ser.total_lines, par.total_lines);
}

TEST(FortranEmit, PartialSumsAccumulate) {
  expr::Context ctx;
  std::string rhs = "sin(1*x)";
  for (int i = 2; i <= 10; ++i) {
    rhs += " + sin(" + std::to_string(i) + "*x)";
  }
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    eq der(x) == )" + rhs + R"(;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions topts;
  topts.min_ops_per_task = 0;
  topts.max_ops_per_task = 6;
  const TaskPlan plan = plan_tasks(f, set, topts);
  const EmitResult r = emit_fortran_parallel(f, plan);
  EXPECT_NE(r.code.find("yout(1) = yout(1) + "), std::string::npos);
  EXPECT_NE(r.code.find("partial 1/"), std::string::npos);
}

TEST(CppEmit, ParallelSwitchShape) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kOscillator);
  const Prepared p = prepare(f);
  const EmitResult r = emit_cpp_parallel(f, p.plan);
  EXPECT_NE(r.code.find("void rhs(int worker_id"), std::string::npos);
  EXPECT_NE(r.code.find("switch (worker_id)"), std::string::npos);
  EXPECT_NE(r.code.find("case 1: {"), std::string::npos);
  EXPECT_NE(r.code.find("yout[0] += osc_xdot;"), std::string::npos);
}

TEST(CppEmit, SerialWritesDirectly) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kOscillator);
  const Prepared p = prepare(f);
  const EmitResult r = emit_cpp_serial(f, p.set);
  EXPECT_NE(r.code.find("void rhs(double t"), std::string::npos);
  EXPECT_NE(r.code.find("yout[0] = "), std::string::npos);
  EXPECT_EQ(r.code.find("switch"), std::string::npos);
}

TEST(CppEmit, ParameterConstantsEmitted) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    param stiffness = 12.5;
    var x start 1;
    eq der(x) == -stiffness*x;
  end
  instance i : A;
end)");
  const Prepared p = prepare(f);
  const EmitResult r = emit_cpp_parallel(f, p.plan);
  EXPECT_NE(r.code.find("constexpr double i_stiffness = 12.5;"),
            std::string::npos);
}

TEST(Emit, BearingStatisticsHaveTheRightShape) {
  // §3.3's headline numbers: parallel code has MORE CSE temps and MORE
  // lines than serial code; declarations are a large fraction.
  expr::Context ctx;
  models::BearingConfig cfg;
  cfg.n_rollers = 10;
  model::FlatSystem f = model::flatten(models::build_bearing(ctx, cfg));
  const Prepared p = prepare(f, 16);
  const EmitResult par = emit_fortran_parallel(f, p.plan, {1, false});
  const EmitResult ser = emit_fortran_serial(f, p.set, {1, false});
  EXPECT_GT(par.num_cse_temps, ser.num_cse_temps / 2);
  EXPECT_GT(par.total_lines, ser.total_lines);
  EXPECT_GT(par.decl_lines * 3, par.total_lines / 3);
}

// ------------------------------------------------ golden snapshots
//
// Full-text snapshots of the emitted code for two models across every
// emitter. A drifted snapshot means the generated-code surface changed:
// if the change is intentional, regenerate with scripts/update_golden.sh
// (or OMX_UPDATE_GOLDEN=1) and commit the diff alongside the emitter
// change so review sees exactly what the generators now produce.

std::string golden_path(const std::string& name) {
  return std::string(OMX_GOLDEN_DIR) + "/" + name;
}

void expect_matches_golden(const std::string& name,
                           const std::string& code) {
  const std::string path = golden_path(name);
  if (std::getenv("OMX_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << code;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << "; run scripts/update_golden.sh";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string want = buf.str();
  if (want == code) {
    return;
  }
  // Point at the first drifted line instead of dumping both files.
  std::istringstream a(want), b(code);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool gb = static_cast<bool>(std::getline(b, lb));
    if (!ga && !gb) {
      break;
    }
    if (la != lb || ga != gb) {
      FAIL() << name << " drifted at line " << line << ":\n  golden: "
             << (ga ? la : "<eof>") << "\n  emitted: "
             << (gb ? lb : "<eof>")
             << "\nrun scripts/update_golden.sh if this is intentional";
    }
    la.clear();
    lb.clear();
  }
  FAIL() << name << ": content differs only in trailing bytes; run "
            "scripts/update_golden.sh if this is intentional";
}

model::FlatSystem golden_bearing(expr::Context& ctx) {
  models::BearingConfig cfg;
  cfg.n_rollers = 4;  // small enough for reviewable snapshots
  return model::flatten(models::build_bearing(ctx, cfg));
}

void check_model_goldens(const std::string& stem,
                         const model::FlatSystem& f) {
  const Prepared p = prepare(f);
  expect_matches_golden(stem + "_serial.cpp.golden",
                        emit_cpp_serial(f, p.set).code);
  expect_matches_golden(stem + "_parallel.cpp.golden",
                        emit_cpp_parallel(f, p.plan).code);
  expect_matches_golden(stem + "_serial_batch.cpp.golden",
                        emit_cpp_serial_batch(f, p.set).code);
  expect_matches_golden(stem + "_parallel_batch.cpp.golden",
                        emit_cpp_parallel_batch(f, p.plan).code);
  expect_matches_golden(stem + "_serial.f90.golden",
                        emit_fortran_serial(f, p.set).code);
  expect_matches_golden(stem + "_parallel.f90.golden",
                        emit_fortran_parallel(f, p.plan).code);
}

TEST(Golden, OscillatorEmittersAreStable) {
  expr::Context ctx;
  check_model_goldens("oscillator", flatten_src(ctx, kOscillator));
}

TEST(Golden, BearingEmittersAreStable) {
  expr::Context ctx;
  check_model_goldens("bearing", golden_bearing(ctx));
}

TEST(Golden, BouncingBallEmittersAreStable) {
  // A model with a `when` clause: the serial surfaces additionally carry
  // the num_events/event_direction/event_guard/event_apply block.
  expr::Context ctx;
  check_model_goldens(
      "ball", model::flatten(models::build_bouncing_ball(ctx)));
}

TEST(CppEmit, EventSectionsOnlyForModelsWithWhens) {
  expr::Context ctx;
  model::FlatSystem smooth = flatten_src(ctx, kOscillator);
  const Prepared ps = prepare(smooth);
  EXPECT_EQ(emit_cpp_serial(smooth, ps.set).code.find("event_guard"),
            std::string::npos);

  expr::Context ctx2;
  model::FlatSystem ball =
      model::flatten(models::build_bouncing_ball(ctx2));
  const Prepared pb = prepare(ball);
  const EmitResult cpp = emit_cpp_serial(ball, pb.set);
  EXPECT_NE(cpp.code.find("int num_events() { return 1; }"),
            std::string::npos);
  EXPECT_NE(cpp.code.find("double event_guard(int k, double t,"
                          " const double* yin)"),
            std::string::npos);
  EXPECT_NE(cpp.code.find("void event_apply(int k, double t,"
                          " double* yin)"),
            std::string::npos);
  const EmitResult f90 = emit_fortran_serial(ball, pb.set);
  EXPECT_NE(f90.code.find("function event_guard(k, t, yin) result(g)"),
            std::string::npos);
  EXPECT_NE(f90.code.find("subroutine event_apply(k, t, yin)"),
            std::string::npos);
}

TEST(Emit, GeneratedCppOscillatorCompilesConceptually) {
  // Sanity: balanced braces in emitted C++ (cheap structural check).
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, kOscillator);
  const Prepared p = prepare(f);
  const EmitResult r = emit_cpp_parallel(f, p.plan);
  const auto open = std::count(r.code.begin(), r.code.end(), '{');
  const auto close = std::count(r.code.begin(), r.code.end(), '}');
  EXPECT_EQ(open, close);
}

}  // namespace
}  // namespace omx::codegen
