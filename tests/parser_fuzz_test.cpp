// Round-trip fuzzing for the parser and unparser.
//
// Two properties, each driven by a fixed-seed SplitMix64 so failures
// reproduce exactly:
//  * well-formed models drawn from the grammar must parse, and the
//    unparser must be a fixpoint of the parse/print loop:
//    unparse(parse(unparse(parse(src)))) == unparse(parse(src));
//  * mutated (usually malformed) sources must either parse or fail with a
//    clean omx::Error carrying a message — never crash, hang, or throw
//    anything else.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "omx/model/model.hpp"
#include "omx/parser/parser.hpp"
#include "omx/parser/unparse.hpp"
#include "omx/support/diagnostics.hpp"
#include "omx/support/rng.hpp"

namespace omx {
namespace {

// Generates random well-formed model source straight from the grammar in
// parser.hpp. Working in source text (rather than building ASTs) also
// exercises the lexer: random comments, stray whitespace, and redundant
// parentheses all flow through it.
class SourceGen {
 public:
  explicit SourceGen(std::uint64_t seed) : rng_(seed) {}

  std::string model() {
    std::string out = "model M" + std::to_string(rng_.below(100)) + "\n";
    const std::size_t n_classes = 1 + rng_.below(3);
    for (std::size_t c = 0; c < n_classes; ++c) {
      class_def(c, out);
    }
    const std::size_t n_instances = 1 + rng_.below(3);
    for (std::size_t i = 0; i < n_instances; ++i) {
      instance(i, n_classes, out);
    }
    out += "end\n";
    return out;
  }

  /// A standalone expression over a small fixed scope (for
  /// parse_expression round trips).
  std::string expression() {
    scope_ = {"x", "y", "z", "time"};
    return expr(3);
  }

 private:
  static const char* func1_names(std::size_t i) {
    static const char* kNames[] = {"sin",  "cos",  "tan",  "asin", "acos",
                                   "atan", "sinh", "cosh", "tanh", "exp",
                                   "log",  "sqrt", "abs",  "sign"};
    return kNames[i % 14];
  }
  static const char* func2_names(std::size_t i) {
    static const char* kNames[] = {"atan2", "min", "max", "hypot"};
    return kNames[i % 4];
  }

  std::string number() {
    // Mix of small integers, decimals, and scientific notation; negatives
    // arrive via unary minus in expr(), since the lexer has no signed
    // literals.
    switch (rng_.below(4)) {
      case 0:
        return std::to_string(rng_.below(100));
      case 1:
        return std::to_string(rng_.below(100)) + "." +
               std::to_string(rng_.below(1000));
      case 2:
        return std::to_string(1 + rng_.below(9)) + "e-" +
               std::to_string(1 + rng_.below(12));
      default:
        return std::to_string(1 + rng_.below(9)) + "." +
               std::to_string(rng_.below(100)) + "e" +
               std::to_string(rng_.below(6));
    }
  }

  std::string leaf() {
    if (!scope_.empty() && rng_.below(2) == 0) {
      return scope_[rng_.below(scope_.size())];
    }
    return number();
  }

  std::string expr(std::size_t depth) {
    if (depth == 0 || rng_.below(4) == 0) {
      return leaf();
    }
    switch (rng_.below(8)) {
      case 0:
        return expr(depth - 1) + " + " + expr(depth - 1);
      case 1:
        return expr(depth - 1) + " - " + expr(depth - 1);
      case 2:
        return expr(depth - 1) + " * " + expr(depth - 1);
      case 3:
        return expr(depth - 1) + " / (1 + " + expr(depth - 1) + ")";
      case 4:
        return "-" + expr(depth - 1);
      case 5:
        return std::string(func1_names(rng_.below(14))) + "(" +
               expr(depth - 1) + ")";
      case 6:
        return std::string(func2_names(rng_.below(4))) + "(" +
               expr(depth - 1) + ", " + expr(depth - 1) + ")";
      default:
        // Redundant parens and ^ with a simple exponent; the round trip
        // must normalize the former and preserve the latter.
        return "((" + expr(depth - 1) + ")) ^ " +
               std::to_string(2 + rng_.below(3));
    }
  }

  void maybe_comment(std::string& out) {
    switch (rng_.below(8)) {
      case 0:
        out += "  // line comment " + std::to_string(rng_.below(100)) + "\n";
        break;
      case 1:
        out += "  (* block (* nested *) comment *)\n";
        break;
      default:
        break;
    }
  }

  void class_def(std::size_t idx, std::string& out) {
    const std::size_t n_formals = rng_.below(3);
    scope_.clear();
    scope_.push_back("time");
    out += "  class C" + std::to_string(idx);
    if (n_formals > 0) {
      out += "(";
      for (std::size_t f = 0; f < n_formals; ++f) {
        const std::string name = "f" + std::to_string(f);
        out += (f > 0 ? ", " : "") + name;
        scope_.push_back(name);
      }
      out += ")";
    }
    // Single inheritance from an already-emitted class, sometimes.
    if (idx > 0 && rng_.below(3) == 0) {
      out += " inherits C" + std::to_string(rng_.below(idx));
      if (rng_.below(2) == 0) {
        out += "(" + number() + ")";
      }
    }
    out += "\n";
    maybe_comment(out);

    std::vector<std::string> vars;
    const std::size_t n_vars = 1 + rng_.below(3);
    for (std::size_t v = 0; v < n_vars; ++v) {
      const std::string name = "v" + std::to_string(v);
      out += "    var " + name;
      if (rng_.below(2) == 0) {
        out += " start " + expr(1);
      }
      out += ";\n";
      vars.push_back(name);
      scope_.push_back(name);
    }
    const std::size_t n_params = rng_.below(3);
    for (std::size_t p = 0; p < n_params; ++p) {
      const std::string name = "p" + std::to_string(p);
      out += "    param " + name + " = " + expr(1) + ";\n";
      scope_.push_back(name);
    }
    maybe_comment(out);
    for (const std::string& v : vars) {
      out += "    eq der(" + v + ") == " + expr(2 + rng_.below(2)) + ";\n";
    }
    if (rng_.below(3) == 0) {
      out += "    eq " + expr(2) + " == " + expr(2) + ";\n";
    }
    out += "  end\n";
  }

  void instance(std::size_t idx, std::size_t n_classes, std::string& out) {
    out += "  instance m" + std::to_string(idx);
    const bool is_array = rng_.below(3) == 0;
    if (is_array) {
      const std::uint64_t lo = 1 + rng_.below(3);
      out += "[" + std::to_string(lo) + ".." +
             std::to_string(lo + rng_.below(4)) + "]";
    }
    out += " : C" + std::to_string(rng_.below(n_classes));
    if (rng_.below(2) == 0) {
      scope_.clear();
      if (is_array) {
        scope_.push_back("index");
      }
      out += "(" + expr(1) + ")";
    }
    out += ";\n";
  }

  SplitMix64 rng_;
  std::vector<std::string> scope_;
};

// Applies one random small corruption to `src`.
void mutate(SplitMix64& rng, std::string& src) {
  if (src.empty()) {
    return;
  }
  const std::size_t at = rng.below(src.size());
  static const char kJunk[] = "abz019+-*/^()[].,;=\"@#$ \n";
  switch (rng.below(5)) {
    case 0:  // delete a span
      src.erase(at, 1 + rng.below(8));
      break;
    case 1:  // insert junk
      src.insert(at, 1, kJunk[rng.below(sizeof(kJunk) - 1)]);
      break;
    case 2:  // duplicate a span
      src.insert(at, src.substr(at, 1 + rng.below(8)));
      break;
    case 3:  // swap two characters
      std::swap(src[at], src[rng.below(src.size())]);
      break;
    default:  // truncate
      src.resize(at);
      break;
  }
}

TEST(ParserFuzz, WellFormedModelsRoundTripToAFixpoint) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    SourceGen gen(0x51ed2701u + seed);
    const std::string src = gen.model();
    SCOPED_TRACE("seed " + std::to_string(seed) + "\nsource:\n" + src);

    expr::Context c1;
    model::Model m1 = [&] {
      try {
        return parser::parse_model(src, c1);
      } catch (const omx::Error& e) {
        ADD_FAILURE() << "generated source failed to parse: " << e.what();
        throw;
      }
    }();
    const std::string s1 = parser::unparse_model(m1);

    expr::Context c2;
    const model::Model m2 = parser::parse_model(s1, c2);
    ASSERT_EQ(m2.classes().size(), m1.classes().size());
    ASSERT_EQ(m2.instances().size(), m1.instances().size());
    const std::string s2 = parser::unparse_model(m2);
    ASSERT_EQ(s1, s2) << "unparse is not a fixpoint; first print:\n" << s1;
  }
}

TEST(ParserFuzz, ExpressionRoundTripPreservesStructure) {
  // Hash-consing makes structural equality an id comparison: re-parsing
  // the unparsed text into the SAME pool must return the same ExprId.
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    SourceGen gen(0xacc01adeu + seed);
    const std::string src = gen.expression();
    SCOPED_TRACE("seed " + std::to_string(seed) + ", expr: " + src);

    expr::Context ctx;
    const expr::ExprId id1 = parser::parse_expression(src, ctx);
    const std::string printed = parser::unparse_expr(ctx, id1);
    const expr::ExprId id2 = parser::parse_expression(printed, ctx);
    ASSERT_EQ(id1, id2) << "printed form: " << printed;
  }
}

TEST(ParserFuzz, MutatedSourcesNeverCrashTheParser) {
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    SplitMix64 rng(0xdead0u + seed);
    SourceGen gen(rng.next_u64());
    std::string src = gen.model();
    const std::size_t n_mutations = 1 + rng.below(4);
    for (std::size_t i = 0; i < n_mutations; ++i) {
      mutate(rng, src);
    }
    // Contract: any input either parses or raises omx::Error with a
    // message. Anything else (segfault, other exception type) fails the
    // test run.
    try {
      expr::Context ctx;
      parser::parse_model(src, ctx);
      ++parsed;
    } catch (const omx::Error& e) {
      EXPECT_STRNE(e.what(), "") << "empty diagnostic for:\n" << src;
      ++rejected;
    }
  }
  // Sanity: the mutator actually produces both outcomes.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(parsed + rejected, 0u);
}

TEST(ParserFuzz, TruncationsOfAValidModelNeverCrashTheParser) {
  // Every prefix of a valid model is a parse attempt that must end in a
  // clean diagnostic (or, for the full text, success).
  SourceGen gen(0xbeefu);
  const std::string src = gen.model();
  for (std::size_t len = 0; len <= src.size(); ++len) {
    try {
      expr::Context ctx;
      parser::parse_model(src.substr(0, len), ctx);
    } catch (const omx::Error& e) {
      EXPECT_STRNE(e.what(), "");
    }
  }
}

}  // namespace
}  // namespace omx
