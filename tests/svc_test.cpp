// Service-tier tests: protocol framing in isolation, then a live
// in-process svc::Server driven through svc::Client (compile, submit,
// stream, backpressure, cancellation, disconnect, keepalive) plus raw
// sockets for the malformed-input paths a well-behaved client can't
// produce. The SvcStress suite is the high-contention configuration the
// TSan CI pass runs (8 client threads submitting and cancelling against
// the shared daemon state).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "omx/models/oscillator.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/svc/client.hpp"
#include "omx/svc/protocol.hpp"
#include "omx/svc/server.hpp"

namespace omx::svc {
namespace {

// ------------------------------------------------------------ protocol

TEST(SvcProtocol, EncodeDecodeRoundTrip) {
  Message m;
  m.type = MsgType::kSubmit;
  m.json = "{\"model\": \"m1\", \"scenarios\": 3}";
  const double payload[4] = {1.0, -2.5, 3.25e-300, 0.0};
  append_f64(m.binary, payload, 4);

  const std::string wire = encode(m);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Message out;
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out.type, MsgType::kSubmit);
  EXPECT_EQ(out.json, m.json);
  double decoded[4] = {};
  read_f64(out.binary, 0, decoded, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(decoded[i], payload[i]) << "f64 slot " << i;
  }
  EXPECT_FALSE(reader.next(out)) << "one frame in, one frame out";
}

TEST(SvcProtocol, ReassemblesByteAtATime) {
  Message m;
  m.type = MsgType::kStats;
  m.json = "{}";
  const std::string wire = encode(m) + encode(m);
  FrameReader reader;
  Message out;
  int got = 0;
  for (const char b : wire) {
    reader.feed(&b, 1);
    while (reader.next(out)) {
      EXPECT_EQ(out.type, MsgType::kStats);
      ++got;
    }
  }
  EXPECT_EQ(got, 2);
}

TEST(SvcProtocol, RejectsRuntLength) {
  // length = 2 cannot even hold the type byte + json_len field.
  const char wire[] = {2, 0, 0, 0, 0x01, 0x00};
  FrameReader reader;
  reader.feed(wire, sizeof(wire));
  Message out;
  EXPECT_THROW(reader.next(out), omx::Error);
}

TEST(SvcProtocol, RejectsOversizedFrameBeforeBuffering) {
  // A header claiming 1 MiB against a 64-byte ceiling must throw from
  // the header alone — no payload bytes are ever supplied.
  const std::uint32_t huge = 1u << 20;
  char wire[5];
  std::memcpy(wire, &huge, 4);
  wire[4] = 0x01;
  FrameReader reader(64);
  reader.feed(wire, sizeof(wire));
  Message out;
  EXPECT_THROW(reader.next(out), omx::Error);
}

TEST(SvcProtocol, RejectsJsonLenOverrun) {
  Message m;
  m.type = MsgType::kPing;
  m.json = "{}";
  std::string wire = encode(m);
  // Corrupt json_len (bytes 5..8) to overrun the frame.
  const std::uint32_t bad = 9999;
  std::memcpy(&wire[5], &bad, 4);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Message out;
  EXPECT_THROW(reader.next(out), omx::Error);
}

TEST(SvcProtocol, RejectsUnknownMessageType) {
  Message m;
  m.type = MsgType::kPing;
  std::string wire = encode(m);
  wire[4] = 0x7f;  // not a MsgType
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Message out;
  EXPECT_THROW(reader.next(out), omx::Error);
}

// ------------------------------------------------------- live server

/// Interpreter backend: no host-compiler dependency, and kernels build
/// in microseconds so tests exercise the daemon, not g++.
ServerOptions test_server_opts() {
  ServerOptions so;
  so.backend = exec::Backend::kInterp;
  so.executors = 2;
  so.queue_cap = 4;
  so.retry_after_ms = 5;
  return so;
}

/// A submit whose rk4 step budget keeps the job running for hundreds of
/// milliseconds — long enough to observe RETRY/CANCEL behavior, short
/// enough (when cancelled) to keep the suite fast.
SubmitRequest slow_request(const ModelInfo& model) {
  SubmitRequest req;
  req.model = model.model;
  req.method = "rk4";
  req.dt = 1e-7;
  req.tend = 1.0;  // 10M steps; cancellation is the expected exit
  req.record_every = 1u << 20;
  return req;
}

/// Drains events until `job`'s DONE arrives; returns it.
Event drain_to_done(Client& client, std::uint64_t job) {
  for (;;) {
    Event ev;
    if (!client.next_event(ev, 120000)) {
      ADD_FAILURE() << "timed out waiting for DONE of job " << job;
      return ev;
    }
    if (ev.kind == Event::Kind::kDone && ev.job == job) {
      return ev;
    }
  }
}

TEST(SvcServer, CompileSubmitStreamRoundTrip) {
  Server server(test_server_opts());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());

  const ModelInfo model = client.compile_builtin("oscillator");
  EXPECT_EQ(model.n, 2u);
  EXPECT_FALSE(model.model.empty());
  const ModelInfo again = client.compile_builtin("oscillator");
  EXPECT_EQ(again.model, model.model);
  EXPECT_TRUE(again.cached) << "second COMPILE must hit the registry";

  SubmitRequest req;
  req.model = model.model;
  req.method = "dopri5";
  req.tend = 0.5;
  req.scenarios = 3;
  req.y0s.reserve(3 * model.n);
  for (int s = 0; s < 3; ++s) {
    req.y0s.push_back(1.0 + 0.1 * s);
    req.y0s.push_back(0.0);
  }
  const SubmitResult sub = client.submit(req);
  ASSERT_TRUE(sub.accepted);

  std::vector<std::uint64_t> streamed(3, 0);
  std::uint64_t frames = 0;
  Event done;
  for (;;) {
    Event ev;
    ASSERT_TRUE(client.next_event(ev, 120000)) << "stream stalled";
    if (ev.kind == Event::Kind::kFrame) {
      ASSERT_LT(ev.scenario, 3u);
      ASSERT_EQ(ev.n, model.n);
      ASSERT_EQ(ev.times.size(), ev.rows);
      ASSERT_EQ(ev.states.size(), ev.rows * ev.n);
      streamed[ev.scenario] += ev.rows;
      ++frames;
      continue;
    }
    done = ev;
    break;
  }
  EXPECT_TRUE(done.error.empty()) << done.error;
  EXPECT_FALSE(done.cancelled);
  EXPECT_EQ(done.frames, frames);
  ASSERT_EQ(done.row_counts.size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(streamed[s], done.row_counts[s])
        << "scenario " << s << ": dropped frames";
    EXPECT_GT(streamed[s], 0u);
  }
  client.bye();
  server.stop();
}

TEST(SvcServer, AdmissionRejectCarriesRetryHint) {
  ServerOptions so = test_server_opts();
  so.executors = 1;
  so.queue_cap = 0;
  so.retry_after_ms = 37;
  Server server(so);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const ModelInfo model = client.compile_builtin("oscillator");

  const SubmitResult first = client.submit(slow_request(model));
  ASSERT_TRUE(first.accepted);
  const SubmitResult second = client.submit(slow_request(model));
  EXPECT_FALSE(second.accepted) << "queue_cap 0 + busy executor";
  EXPECT_EQ(second.retry_after_ms, 37);

  EXPECT_TRUE(client.cancel(first.job));
  const Event done = drain_to_done(client, first.job);
  EXPECT_TRUE(done.cancelled);
  client.bye();
  server.stop();
}

TEST(SvcServer, CancelAbortsInFlightLanes) {
  const std::uint64_t lanes_before =
      obs::Registry::global().counter("ensemble.lanes_cancelled").value();
  Server server(test_server_opts());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const ModelInfo model = client.compile_builtin("oscillator");

  const SubmitResult sub = client.submit(slow_request(model));
  ASSERT_TRUE(sub.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(client.cancel(sub.job));
  const Event done = drain_to_done(client, sub.job);
  EXPECT_TRUE(done.cancelled);
  EXPECT_TRUE(done.error.empty()) << done.error;
  client.bye();
  server.stop();

  // The solver lane was abandoned mid-flight, not run to completion.
  const std::uint64_t lanes_after =
      obs::Registry::global().counter("ensemble.lanes_cancelled").value();
  EXPECT_GT(lanes_after, lanes_before);
}

TEST(SvcServer, CancelAfterRetireIsNoOp) {
  Server server(test_server_opts());
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const ModelInfo model = client.compile_builtin("oscillator");

  SubmitRequest req;
  req.model = model.model;
  req.tend = 0.01;
  const SubmitResult sub = client.submit(req);
  ASSERT_TRUE(sub.accepted);
  const Event done = drain_to_done(client, sub.job);
  EXPECT_FALSE(done.cancelled);

  EXPECT_FALSE(client.cancel(sub.job)) << "job already retired";
  EXPECT_FALSE(client.cancel(999999)) << "job never existed";
  client.bye();
  server.stop();
}

TEST(SvcServer, MidStreamDisconnectCancelsJob) {
  const std::uint64_t cancelled_before =
      obs::Registry::global().counter("svc.jobs_cancelled").value();
  Server server(test_server_opts());
  server.start();
  {
    Client client;
    client.connect("127.0.0.1", server.port());
    const ModelInfo model = client.compile_builtin("oscillator");
    const SubmitResult sub = client.submit(slow_request(model));
    ASSERT_TRUE(sub.accepted);
    client.close();  // abrupt: no BYE, no CANCEL
  }
  // The event loop notices the hangup and flips the job's cancel flag;
  // the solver aborts within one step attempt.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (obs::Registry::global().counter("svc.jobs_cancelled").value() ==
         cancelled_before) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "disconnect never cancelled the job";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.stop();
}

TEST(SvcServer, IdleConnectionTimesOut) {
  ServerOptions so = test_server_opts();
  so.idle_timeout_ms = 100;
  Server server(so);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  client.ping();  // healthy while active
  // Poll-loop wakeups sweep idlers every <= 200 ms; well past both.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_THROW(
      {
        client.ping();
        client.ping();  // first may ride the send buffer; reads must fail
      },
      omx::Error);
  server.stop();
}

// Raw-socket sender for malformed input a Client cannot produce.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  void send_bytes(const void* data, std::size_t n) {
    EXPECT_EQ(::send(fd_, data, n, 0), static_cast<ssize_t>(n));
  }

  /// Reads until one message parses or the peer closes; true when the
  /// peer closed the connection after (at most) one message.
  bool read_reply_then_eof(Message& out) {
    FrameReader reader;
    bool got = false;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        return got;
      }
      reader.feed(buf, static_cast<std::size_t>(n));
      if (!got && reader.next(out)) {
        got = true;
      }
    }
  }

 private:
  int fd_ = -1;
};

TEST(SvcServer, MalformedFrameAnswersErrorAndCloses) {
  Server server(test_server_opts());
  server.start();
  RawConn raw(server.port());
  const char runt[] = {2, 0, 0, 0, 0x01, 0x00};  // length too short
  raw.send_bytes(runt, sizeof(runt));
  Message reply;
  ASSERT_TRUE(raw.read_reply_then_eof(reply));
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_NE(reply.json.find("error"), std::string::npos);
  server.stop();
}

TEST(SvcServer, OversizedFrameAnswersErrorAndCloses) {
  ServerOptions so = test_server_opts();
  so.max_frame_bytes = 4096;
  Server server(so);
  server.start();
  RawConn raw(server.port());
  // Header alone: claims 1 MiB. The server must reject it from the
  // length field without waiting for (or buffering) the payload.
  const std::uint32_t huge = 1u << 20;
  char header[5];
  std::memcpy(header, &huge, 4);
  header[4] = 0x02;
  raw.send_bytes(header, sizeof(header));
  Message reply;
  ASSERT_TRUE(raw.read_reply_then_eof(reply));
  EXPECT_EQ(reply.type, MsgType::kError);
  server.stop();
}

// --------------------------------------------------- solver-side cancel

TEST(SvcCancel, SolveThrowsCancelledWhenFlagPreSet) {
  const pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const exec::KernelInstance kernel =
      cm.make_kernel(exec::Backend::kInterp);
  const ode::Problem p = cm.make_problem(kernel, 0.0, 1.0);

  std::atomic<bool> cancel{true};
  ode::SolverOptions opts;
  opts.cancel = &cancel;
  EXPECT_THROW(ode::solve(p, ode::Method::kDopri5, opts), ode::Cancelled);
  EXPECT_THROW(ode::solve(p, ode::Method::kRk4, opts), ode::Cancelled);
  EXPECT_THROW(ode::solve(p, ode::Method::kBdf, opts), ode::Cancelled);
}

TEST(SvcCancel, EnsembleAbandonsLanesMidFlight) {
  const pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator);
  const exec::KernelInstance kernel =
      cm.make_kernel(exec::Backend::kInterp);
  const ode::Problem p = cm.make_problem(kernel, 0.0, 1.0);

  std::atomic<bool> cancel{false};
  ode::SolverOptions opts;
  opts.dt = 1e-7;  // 10M rk4 steps: cancellation is the only exit
  opts.record_every = 1u << 20;
  opts.cancel = &cancel;
  ode::EnsembleSpec spec;
  spec.workers = 2;
  for (int s = 0; s < 4; ++s) {
    spec.initial_states.push_back({1.0 + 0.1 * s, 0.0});
  }

  const std::uint64_t lanes_before =
      obs::Registry::global().counter("ensemble.lanes_cancelled").value();
  std::thread trigger([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.store(true, std::memory_order_relaxed);
  });
  EXPECT_THROW(ode::solve_ensemble(p, ode::Method::kRk4, opts, spec),
               ode::Cancelled);
  trigger.join();
  const std::uint64_t lanes_after =
      obs::Registry::global().counter("ensemble.lanes_cancelled").value();
  EXPECT_GT(lanes_after, lanes_before) << "no lane recorded its abandon";
}

// --------------------------------------------------------------- stress

/// 8 client threads submit and cancel against one daemon: every oddly
/// numbered job is cancelled right after submit, and every job — ok or
/// cancelled — must still deliver exactly one DONE. Run under the TSan
/// CI pass (scripts/ci.sh --tsan includes the Svc suites).
TEST(SvcStress, ConcurrentSubmitCancelEightClients) {
  ServerOptions so = test_server_opts();
  so.executors = 2;
  so.queue_cap = 16;
  Server server(so);
  server.start();
  const std::uint16_t port = server.port();

  constexpr int kClients = 8;
  constexpr int kJobs = 6;
  std::atomic<int> done_count{0};
  std::atomic<int> cancelled_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([port, c, &done_count, &cancelled_count] {
      Client client;
      client.connect("127.0.0.1", port);
      const ModelInfo model = client.compile_builtin("oscillator");
      for (int j = 0; j < kJobs; ++j) {
        const bool will_cancel = (c + j) % 2 == 1;
        SubmitRequest req = will_cancel
                                ? slow_request(model)
                                : SubmitRequest{};
        if (!will_cancel) {
          req.model = model.model;
          req.tend = 0.01;
        }
        SubmitResult sub;
        for (;;) {
          sub = client.submit(req);
          if (sub.accepted) {
            break;
          }
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::max(1, sub.retry_after_ms)));
        }
        if (will_cancel) {
          client.cancel(sub.job);  // may race retirement; both fine
        }
        const Event done = drain_to_done(client, sub.job);
        done_count.fetch_add(1, std::memory_order_relaxed);
        if (done.cancelled) {
          cancelled_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
      client.bye();
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  server.stop();
  EXPECT_EQ(done_count.load(), kClients * kJobs);
  // Slow jobs only end by cancellation, so at least one must land even
  // under scheduler noise (kClients * kJobs / 2 are flagged).
  EXPECT_GT(cancelled_count.load(), 0);
}

}  // namespace
}  // namespace omx::svc
