// Tape compilation and the VM: compiled programs must agree with the
// tree-walking reference semantics on every model, parallel and serial,
// plus the analytic Jacobian program.
#include <gtest/gtest.h>

#include <cmath>

#include "omx/codegen/tape.hpp"
#include "omx/model/flatten.hpp"
#include "omx/vm/interp.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/servo.hpp"
#include "omx/ode/jacobian.hpp"
#include "omx/parser/parser.hpp"
#include "omx/support/rng.hpp"

namespace omx::codegen {
namespace {

model::FlatSystem flatten_src(expr::Context& ctx, const std::string& src) {
  model::Model m = parser::parse_model(src, ctx);
  return model::flatten(m);
}

void expect_tapes_match_reference(const model::FlatSystem& f,
                                  std::uint64_t seed) {
  const AssignmentSet set = build_assignments(f);
  const TaskPlan plan = plan_tasks(f, set, {});
  const vm::Program par = compile_parallel_tape(f, plan);
  const vm::Program ser = compile_serial_tape(f, set);

  vm::Workspace ws_par(par), ws_ser(ser);
  const std::size_t n = f.num_states();
  std::vector<double> y(n), ref(n), got_par(n), got_ser(n);
  omx::SplitMix64 rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    for (std::size_t i = 0; i < n; ++i) {
      // Perturb around the start values to stay in a sane region.
      y[i] = f.states()[i].start + rng.uniform(-0.01, 0.01) *
                                       (1.0 + std::fabs(f.states()[i].start));
    }
    const double t = rng.uniform(0.0, 5.0);
    f.eval_rhs(t, y, ref);
    vm::eval_rhs_serial(par, t, y, got_par, ws_par);
    vm::eval_rhs_serial(ser, t, y, got_ser, ws_ser);
    for (std::size_t i = 0; i < n; ++i) {
      const double tol = 1e-9 * std::max(1.0, std::fabs(ref[i]));
      EXPECT_NEAR(got_par[i], ref[i], tol) << "parallel, state " << i;
      EXPECT_NEAR(got_ser[i], ref[i], tol) << "serial, state " << i;
    }
  }
}

TEST(Tape, OscillatorMatchesReference) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1, y start 0;
    eq der(x) == y;
    eq der(y) == -x;
  end
  instance o : A;
end)");
  expect_tapes_match_reference(f, 1);
}

TEST(Tape, AlgebraicChainsMatchReference) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    param k = 2.5;
    var x start 1, y start 0.5;
    var a, b, c;
    eq a == k*x + sin(time);
    eq b == a*a - y;
    eq c == max(b, 0) + min(a, y);
    eq der(x) == c - x;
    eq der(y) == b + a;
  end
  instance i : A;
end)");
  expect_tapes_match_reference(f, 2);
}

TEST(Tape, ServoMatchesReference) {
  expr::Context ctx;
  model::FlatSystem f = model::flatten(models::build_servo(ctx));
  expect_tapes_match_reference(f, 3);
}

TEST(Tape, HydroMatchesReference) {
  expr::Context ctx;
  model::FlatSystem f = model::flatten(models::build_hydro(ctx));
  expect_tapes_match_reference(f, 4);
}

TEST(Tape, BearingMatchesReference) {
  expr::Context ctx;
  models::BearingConfig cfg;
  cfg.n_rollers = 4;
  model::FlatSystem f = model::flatten(models::build_bearing(ctx, cfg));
  expect_tapes_match_reference(f, 5);
}

TEST(Tape, SplitTasksAccumulateCorrectly) {
  expr::Context ctx;
  std::string rhs = "sin(1*x)";
  for (int i = 2; i <= 10; ++i) {
    rhs += " + sin(" + std::to_string(i) + "*x)";
  }
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1;
    eq der(x) == )" + rhs + R"(;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions topts;
  topts.min_ops_per_task = 0;
  topts.max_ops_per_task = 6;
  const TaskPlan plan = plan_tasks(f, set, topts);
  ASSERT_GT(plan.tasks.size(), 1u);
  const vm::Program par = compile_parallel_tape(f, plan);
  vm::Workspace ws(par);
  std::vector<double> y{0.8}, got(1), ref(1);
  f.eval_rhs(0.0, y, ref);
  vm::eval_rhs_serial(par, 0.0, y, got, ws);
  EXPECT_NEAR(got[0], ref[0], 1e-12);
}

TEST(Tape, TaskInputStatesAreExact) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 1, y start 1, z start 1;
    var a;
    eq a == 2*z;
    eq der(x) == y;     // reads y only
    eq der(y) == a;     // reads z through a
    eq der(z) == -z;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  TaskPlanOptions topts;
  topts.min_ops_per_task = 0;
  const TaskPlan plan = plan_tasks(f, set, topts);
  const vm::Program par = compile_parallel_tape(f, plan);
  ASSERT_EQ(par.tasks.size(), 3u);
  const auto yi =
      static_cast<std::uint32_t>(f.state_index(ctx.symbol("i.y")));
  const auto zi =
      static_cast<std::uint32_t>(f.state_index(ctx.symbol("i.z")));
  EXPECT_EQ(par.tasks[0].in_states, (std::vector<std::uint32_t>{yi}));
  EXPECT_EQ(par.tasks[1].in_states, (std::vector<std::uint32_t>{zi}));
}

TEST(Tape, ValidateCatchesCorruptPrograms) {
  vm::Program p;
  p.n_state = 2;
  p.n_out = 2;
  p.n_regs = 4;
  p.init_regs.assign(4, 0.0);
  p.code.push_back(vm::Instr{vm::OpCode::kAdd, 0, 99, 0, 1});  // bad dst
  vm::TaskCode t;
  t.code_begin = 0;
  t.code_end = 1;
  p.tasks.push_back(t);
  EXPECT_THROW(p.validate(), omx::Bug);
}

TEST(Tape, JacobianMatchesFiniteDifferences) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    param k = 1.7;
    var x start 0.6, y start 0.3;
    var a;
    eq a == x*y;
    eq der(x) == sin(y) + k*a;
    eq der(y) == -x*x + cos(time)*y;
  end
  instance i : A;
end)");
  const vm::Program jp = compile_jacobian_tape(f);
  vm::Workspace ws(jp);
  std::vector<double> y{0.6, 0.3};
  std::vector<double> jbuf(jp.n_out, 0.0);
  vm::eval_rhs_serial(jp, 0.9, y, jbuf, ws);

  la::Matrix fd(2, 2);
  std::uint64_t calls = 0;
  auto ref_rhs = [&](double t, std::span<const double> yy,
                     std::span<double> yd) { f.eval_rhs(t, yy, yd); };
  ode::finite_difference_jacobian(ref_rhs, 0.9, y, fd, calls);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(jbuf[i * 2 + j], fd(i, j),
                  1e-6 * std::max(1.0, std::fabs(fd(i, j))))
          << i << "," << j;
    }
  }
}

TEST(Tape, ParameterFoldingUsesBoundValues) {
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    param k = 4;
    var x start 1;
    eq der(x) == -k*x;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  const vm::Program ser = compile_serial_tape(f, set);
  vm::Workspace ws(ser);
  std::vector<double> y{2.0}, ydot(1);
  vm::eval_rhs_serial(ser, 0.0, y, ydot, ws);
  EXPECT_DOUBLE_EQ(ydot[0], -8.0);
}

TEST(Tape, PowStrengthReduction) {
  // Constant powers 2, 3, 4, 0.5 and 1.5 compile to mul/sqrt sequences
  // (no kPow instruction) and agree with the reference evaluation.
  expr::Context ctx;
  model::FlatSystem f = flatten_src(ctx, R"(
model M
  class A
    var x start 0.7;
    eq der(x) == x^2 + x^3 + x^4 + x^0.5 + max(x, 0)^1.5 + x^2.7;
  end
  instance i : A;
end)");
  const AssignmentSet set = build_assignments(f);
  const vm::Program ser = compile_serial_tape(f, set);
  std::size_t pow_count = 0;
  for (const vm::Instr& ins : ser.code) {
    if (ins.op == vm::OpCode::kPow) {
      ++pow_count;
    }
  }
  EXPECT_EQ(pow_count, 1u);  // only the non-reducible x^2.7 remains

  vm::Workspace ws(ser);
  std::vector<double> y{0.7}, got(1), ref(1);
  f.eval_rhs(0.0, y, ref);
  vm::eval_rhs_serial(ser, 0.0, y, got, ws);
  EXPECT_NEAR(got[0], ref[0], 1e-14);

  // Negative base: x^2 and x^3 stay exact; fractional powers are NaN in
  // both the reference (std::pow) and the reduced form.
  y[0] = -1.3;
  f.eval_rhs(0.0, y, ref);
  vm::eval_rhs_serial(ser, 0.0, y, got, ws);
  EXPECT_EQ(std::isnan(got[0]), std::isnan(ref[0]));
}

}  // namespace
}  // namespace omx::codegen
